"""Multi-process Stage 4: the coordinator/worker fleet and its wire format.

The contract under test extends the thread-fleet one across the process
boundary (the paper's §4.4.1 distributed queue): tasks and results cross
as versioned, fully picklable envelopes; each worker process boots a
private kernel; leases are reclaimed from dead or wedged workers; and
``--fleet processes`` produces summaries, reproduction packages and
funnel totals bit-identical to serial and to thread workers — including
after SIGKILLing a worker mid-task or killing and resuming the
coordinator itself.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.obs import JsonlSink, Observer
from repro.obs.stats import funnel_totals, load_stats
from repro.orchestrate.fleet import (
    WIRE_VERSION,
    FleetFault,
    ResultEnvelope,
    TaskEnvelope,
    WireFormatError,
    pmc_from_obj,
    pmc_to_obj,
)
from repro.orchestrate.persistence import CheckpointWriter, load_checkpoint
from repro.orchestrate.pipeline import Snowboard, SnowboardConfig, Stage4Task
from repro.orchestrate.queue import TIMED_OUT, TaskFailure, WorkQueue
from repro.pmc.model import AccessKey, PMC

CONFIG = SnowboardConfig(
    seed=7,
    corpus_budget=120,
    trials_per_pmc=8,
    max_instructions=40_000,
    # Fast liveness so fault drills (boot kills, mid-task SIGKILLs)
    # are detected in seconds, not the production 10s deadline.  The
    # boot grace stays generous: a spawned interpreter importing the
    # kernel has not beaten yet and must not be declared dead.
    fleet_heartbeat_interval=0.1,
    fleet_heartbeat_timeout=1.5,
    fleet_boot_grace=30.0,
)
STRATEGY = "S-INS-PAIR"
BUDGET = 6
FAULT_BUDGET = 4


class Killed(BaseException):
    """Stands in for SIGKILL of the *coordinator*: nothing may catch it."""


@pytest.fixture(scope="module")
def serial_campaign():
    sb = Snowboard(CONFIG).prepare()
    return sb, sb.run_campaign(STRATEGY, test_budget=BUDGET)


@pytest.fixture(scope="module")
def process_run():
    sb = Snowboard(CONFIG).prepare()
    campaign = sb.run_campaign(
        STRATEGY, test_budget=BUDGET, workers=2, fleet="processes"
    )
    return sb, campaign


@pytest.fixture(scope="module")
def socket_run():
    sb = Snowboard(CONFIG).prepare()
    campaign = sb.run_campaign(
        STRATEGY, test_budget=BUDGET, workers=2, fleet="sockets"
    )
    return sb, campaign


@pytest.fixture(scope="module")
def fault_serial():
    """The undisturbed reference the fault-injection runs must match."""
    sb = Snowboard(CONFIG).prepare()
    return sb.run_campaign(STRATEGY, test_budget=FAULT_BUDGET)


# -- wire format -------------------------------------------------------------------


class TestWireFormat:
    def _sample_task(self, sb) -> Stage4Task:
        tests, _ = sb.generate_tests(STRATEGY, limit=2)
        return Stage4Task(task_id=3, test=tests[0], trials=5)

    def test_pmc_round_trip(self):
        pmc = PMC(
            write=AccessKey(addr=0x1000, size=4, ins=0x40_00, value=7),
            read=AccessKey(addr=0x1000, size=4, ins=0x41_00, value=7),
            df_leader=True,
        )
        assert pmc_from_obj(pmc_to_obj(pmc)) == pmc

    def test_task_envelope_round_trip(self, serial_campaign):
        sb, _ = serial_campaign
        task = self._sample_task(sb)
        envelope = TaskEnvelope.from_task(task)
        decoded = pickle.loads(pickle.dumps(envelope)).to_task()
        assert decoded.task_id == task.task_id
        assert decoded.trials == task.trials
        assert decoded.scheduler_kind == task.scheduler_kind
        assert decoded.test.writer == task.test.writer
        assert decoded.test.reader == task.test.reader
        assert decoded.test.pmc == task.test.pmc

    def test_task_envelope_version_guard(self, serial_campaign):
        sb, _ = serial_campaign
        envelope = TaskEnvelope.from_task(self._sample_task(sb))
        assert envelope.version == WIRE_VERSION
        stale = dataclasses.replace(envelope, version=WIRE_VERSION + 1)
        with pytest.raises(WireFormatError):
            stale.to_task()

    def test_result_envelope_version_guard(self):
        result = ResultEnvelope(
            task_id=0, worker_id=0, status="ok", version=WIRE_VERSION + 1
        )
        with pytest.raises(WireFormatError):
            result.decode()

    def test_universe_travels_with_envelope(self, serial_campaign):
        sb, _ = serial_campaign
        task = self._sample_task(sb)
        universe = [
            PMC(
                write=AccessKey(addr=0x2000, size=8, ins=1, value=0),
                read=AccessKey(addr=0x2000, size=8, ins=2, value=0),
            )
        ]
        envelope = TaskEnvelope.from_task(task, universe=universe)
        shipped = pickle.loads(pickle.dumps(envelope))
        assert shipped.universe_pmcs() == universe
        assert TaskEnvelope.from_task(task).universe_pmcs() is None


# -- queue regressions (the bugs that blocked pickling) ----------------------------


class LocalError(Exception):
    """Module-local, but its *instances* may hold unpicklable payloads."""


class TestQueueRegressions:
    def test_timed_out_pickle_identity(self):
        clone = pickle.loads(pickle.dumps(TIMED_OUT))
        assert clone is TIMED_OUT

    def test_task_failure_is_picklable_with_cause(self):
        try:
            try:
                raise ValueError("root cause")
            except ValueError as inner:
                raise RuntimeError("outer") from inner
        except RuntimeError as error:
            failure = TaskFailure.from_exception(7, error, attempts=2)
        clone = pickle.loads(pickle.dumps(failure))
        assert clone == failure
        assert clone.error_type == "RuntimeError"
        assert clone.cause_type == "ValueError"
        assert "root cause" in clone.cause_message
        rebuilt = clone.error
        assert isinstance(rebuilt, RuntimeError)
        assert isinstance(rebuilt.__cause__, ValueError)

    def test_task_failure_survives_unpicklable_exception(self):
        error = LocalError("boom")
        error.payload = lambda: None  # a pickle-hostile attribute
        failure = TaskFailure.from_exception(1, error)
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.error_type == "LocalError"
        assert "boom" in clone.message
        # Non-builtin types rebuild as RuntimeError — the record, not the
        # class, is the contract.
        assert isinstance(clone.error, RuntimeError)

    def test_pending_does_not_touch_qsize(self, monkeypatch):
        """macOS raises NotImplementedError from Queue.qsize; pending()
        must count put/get itself."""
        work = WorkQueue()

        def no_qsize():
            raise NotImplementedError("sem_getvalue unavailable")

        monkeypatch.setattr(work._queue, "qsize", no_qsize)
        ids = [work.put(Stage4Task(task_id=i, test=None, trials=1)) for i in range(3)]
        assert ids == [0, 1, 2]
        assert work.pending() == 3
        assert work.get(timeout=1.0) is not None
        assert work.pending() == 2


# -- golden equivalence: serial == threads == processes ----------------------------


class TestProcessSerialEquivalence:
    def test_identical_summaries(self, serial_campaign, process_run):
        _, serial = serial_campaign
        _, process = process_run
        assert process.summary() == serial.summary()

    def test_no_failures_and_workers_recorded(self, process_run):
        _, campaign = process_run
        assert campaign.workers == 2
        assert campaign.task_failures == 0

    def test_identical_repro_packages(self, serial_campaign, process_run):
        sb_serial, _ = serial_campaign
        sb_process, _ = process_run
        assert set(sb_process.repro_packages) == set(sb_serial.repro_packages)
        for bug_id, package in sb_serial.repro_packages.items():
            assert sb_process.repro_packages[bug_id].to_json() == package.to_json()

    def test_socket_fleet_identical_summary(self, serial_campaign, socket_run):
        _, serial = serial_campaign
        _, socketc = socket_run
        assert socketc.summary() == serial.summary()
        assert socketc.workers == 2
        assert socketc.task_failures == 0

    def test_socket_fleet_identical_repro_packages(
        self, serial_campaign, socket_run
    ):
        sb_serial, _ = serial_campaign
        sb_socket, _ = socket_run
        assert set(sb_socket.repro_packages) == set(sb_serial.repro_packages)
        for bug_id, package in sb_serial.repro_packages.items():
            assert sb_socket.repro_packages[bug_id].to_json() == package.to_json()

    def test_traced_funnels_identical_across_fleets(self, tmp_path):
        """Worker obs buffers replay in task order: thread-, process- and
        socket-fleet traces produce identical funnel totals, and tracing
        changes no campaign's summary."""
        totals = {}
        summaries = {}
        for fleet in ("threads", "processes", "sockets"):
            path = str(tmp_path / f"{fleet}.jsonl")
            obs = Observer(JsonlSink(path))
            sb = Snowboard(CONFIG, observer=obs).prepare()
            campaign = sb.run_campaign(
                STRATEGY, test_budget=FAULT_BUDGET, workers=2, fleet=fleet
            )
            obs.close()
            totals[fleet] = funnel_totals(load_stats(path))
            summaries[fleet] = campaign.summary()
        assert totals["processes"] == totals["threads"]
        assert totals["sockets"] == totals["threads"]
        assert summaries["processes"] == summaries["threads"]
        assert summaries["sockets"] == summaries["threads"]

    @pytest.mark.parametrize("fleet", ["processes", "sockets"])
    def test_rounds_campaign_identical(self, fleet):
        serial = Snowboard(CONFIG)
        serial_result = serial.run_rounds(
            2, round_budget=3, strategy=STRATEGY, corpus_growth=40
        )
        parallel = Snowboard(CONFIG)
        fleet_result = parallel.run_rounds(
            2,
            round_budget=3,
            strategy=STRATEGY,
            corpus_growth=40,
            workers=2,
            fleet=fleet,
        )
        assert fleet_result.summary() == serial_result.summary()


# -- fault injection across the process boundary -----------------------------------


class TestFleetFaults:
    def test_sigkilled_worker_is_respawned_bit_identical(
        self, fault_serial, tmp_path
    ):
        """A worker SIGKILLs itself mid-task: the lease is reclaimed, the
        worker respawned, and the campaign is bit-identical to serial."""
        sb = Snowboard(CONFIG).prepare()
        sb.fleet_fault = FleetFault(
            kill_task_id=1, once_marker=str(tmp_path / "kill.marker")
        )
        campaign = sb.run_campaign(
            STRATEGY, test_budget=FAULT_BUDGET, workers=2, fleet="processes"
        )
        assert campaign.task_failures == 0
        assert campaign.worker_respawns == 1
        assert campaign.task_retries == 1
        assert campaign.summary() == fault_serial.summary()

    def test_wedged_worker_lease_expires(self, fault_serial, tmp_path):
        """A worker hangs without dying: the lease deadline passes, the
        coordinator kills and respawns it, results stay bit-identical."""
        config = dataclasses.replace(CONFIG, fleet_lease_timeout=1.5)
        sb = Snowboard(config).prepare()
        sb.fleet_fault = FleetFault(
            hang_task_id=2, once_marker=str(tmp_path / "hang.marker")
        )
        campaign = sb.run_campaign(
            STRATEGY, test_budget=FAULT_BUDGET, workers=2, fleet="processes"
        )
        assert campaign.task_failures == 0
        assert campaign.worker_respawns == 1
        assert campaign.summary() == fault_serial.summary()

    def test_sigkilled_socket_worker_reclaimed_via_heartbeat(
        self, fault_serial, tmp_path
    ):
        """A socket worker SIGKILLs itself mid-task.  There is no local
        process handle and no exitcode — the coordinator notices purely
        through the missed heartbeat deadline, reclaims the lease, and
        the respawned worker converges bit-identical to serial."""
        sb = Snowboard(CONFIG).prepare()
        sb.fleet_fault = FleetFault(
            kill_task_id=1, once_marker=str(tmp_path / "kill.marker")
        )
        campaign = sb.run_campaign(
            STRATEGY, test_budget=FAULT_BUDGET, workers=2, fleet="sockets"
        )
        assert campaign.task_failures == 0
        assert campaign.worker_respawns == 1
        assert campaign.task_retries == 1
        assert sum(s.heartbeats_missed for s in campaign.worker_stats) == 1
        assert campaign.summary() == fault_serial.summary()

    def test_boot_death_exhausts_pool_without_hanging(self):
        """Every spawn dies at boot: the respawn budget burns down and
        every task surfaces as a failure — no hang, no missing result."""
        sb = Snowboard(CONFIG).prepare()
        sb.fleet_fault = FleetFault(kill_at_boot=True)
        campaign = sb.run_campaign(
            STRATEGY, test_budget=3, workers=2, fleet="processes"
        )
        assert campaign.task_failures == 3
        assert campaign.tested_pmcs == 3
        assert campaign.bugs_found() == {}
        assert campaign.worker_respawns > 0


# -- coordinator kill-and-resume ---------------------------------------------------


class TestCoordinatorKillAndResume:
    def test_kill_mid_merge_then_resume_with_process_fleet(
        self, serial_campaign, tmp_path
    ):
        """The coordinator dies while journalling fleet results; a fresh
        coordinator resumes the journal onto a fresh process fleet and
        lands bit-identical to the uninterrupted serial run."""
        _, uninterrupted = serial_campaign
        path = str(tmp_path / "journal.jsonl")
        original = CheckpointWriter.task_done
        calls = {"n": 0}

        def dying(self, *args, **kwargs):
            if calls["n"] >= 3:
                raise Killed()
            calls["n"] += 1
            return original(self, *args, **kwargs)

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(CheckpointWriter, "task_done", dying)
            sb = Snowboard(CONFIG).prepare()
            with pytest.raises(Killed):
                sb.run_campaign(
                    STRATEGY,
                    test_budget=BUDGET,
                    workers=2,
                    fleet="processes",
                    checkpoint_path=path,
                )
        _, tasks = load_checkpoint(path)
        assert len(tasks) == 3  # the journal stops at the kill point

        # Resume under a *different* fleet kind: the journal is fleet-
        # blind, so a campaign checkpointed under processes restarts on
        # a socket fleet and still lands bit-identical.
        sb2 = Snowboard(CONFIG).prepare()
        resumed = sb2.run_campaign(
            STRATEGY,
            test_budget=BUDGET,
            workers=2,
            fleet="sockets",
            checkpoint_path=path,
            resume=True,
        )
        assert resumed.summary() == uninterrupted.summary()
        _, tasks = load_checkpoint(path)
        assert [t["task_id"] for t in tasks] == list(range(BUDGET))

    def test_fsynced_journal_resumes_identically(self, serial_campaign, tmp_path):
        """--checkpoint-fsync changes durability, never results."""
        _, uninterrupted = serial_campaign
        path = str(tmp_path / "journal.jsonl")
        sb = Snowboard(CONFIG).prepare()
        campaign = sb.run_campaign(
            STRATEGY,
            test_budget=BUDGET,
            checkpoint_path=path,
            checkpoint_fsync=True,
        )
        assert campaign.summary() == uninterrupted.summary()
        resumed = Snowboard(CONFIG).prepare().run_campaign(
            STRATEGY,
            test_budget=BUDGET,
            checkpoint_path=path,
            resume=True,
            checkpoint_fsync=True,
        )
        assert resumed.summary() == uninterrupted.summary()
