"""Tests for the textual program format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.generator import ProgramGenerator
from repro.fuzz.prog import Call, Res, prog
from repro.fuzz.text import ProgramParseError, format_program, parse_program


class TestFormat:
    def test_simple_program(self):
        program = prog(Call("open", (1,)), Call("write", (Res(0), 0x1234)))
        assert format_program(program) == "r0 = open(1)\nr1 = write(r0, 0x1234)"

    def test_small_ints_stay_decimal(self):
        program = prog(Call("msgget", (3,)))
        assert format_program(program) == "r0 = msgget(3)"

    def test_no_args(self):
        program = prog(Call("tty_open", ()))
        assert format_program(program) == "r0 = tty_open()"


class TestParse:
    def test_roundtrip(self):
        program = prog(
            Call("socket", (2,)),
            Call("connect", (Res(0), 1)),
            Call("sendmsg", (Res(0), 0xDEAD)),
        )
        assert parse_program(format_program(program)) == program

    def test_result_prefix_optional(self):
        program = parse_program("r0 = open(1)\nwrite(r0, 7)")
        assert program.calls[1] == Call("write", (Res(0), 7))

    def test_comments_and_blank_lines(self):
        text = """
        # a reproducer
        r0 = open(1)

        read(r0, 1)  # one block
        """
        program = parse_program(text)
        assert len(program) == 2

    def test_hex_and_negative(self):
        program = parse_program("msgsnd(1, 0xff)\nmsgsnd(1, -3)")
        assert program.calls[0].args == (1, 0xFF)
        assert program.calls[1].args == (1, -3)

    def test_unknown_syscall_rejected(self):
        with pytest.raises(ProgramParseError) as excinfo:
            parse_program("bogus(1)")
        assert "unknown syscall" in str(excinfo.value)

    def test_forward_reference_rejected(self):
        with pytest.raises(ProgramParseError) as excinfo:
            parse_program("read(r1, 1)")
        assert "not defined yet" in str(excinfo.value)

    def test_misnumbered_result_rejected(self):
        with pytest.raises(ProgramParseError) as excinfo:
            parse_program("r5 = open(1)")
        assert "numbered in order" in str(excinfo.value)

    def test_garbage_line_rejected(self):
        with pytest.raises(ProgramParseError):
            parse_program("this is not a call")

    def test_bad_argument_rejected(self):
        with pytest.raises(ProgramParseError) as excinfo:
            parse_program('open("path")')
        assert "bad argument" in str(excinfo.value)

    def test_error_carries_line_number(self):
        with pytest.raises(ProgramParseError) as excinfo:
            parse_program("open(1)\nbogus(2)")
        assert excinfo.value.line_number == 2


@given(seed=st.integers(min_value=0, max_value=5000))
@settings(max_examples=60, deadline=None)
def test_property_generated_programs_roundtrip(seed):
    """Any fuzzer-generated program survives format -> parse intact."""
    program = ProgramGenerator(seed=seed).generate()
    assert parse_program(format_program(program)) == program
