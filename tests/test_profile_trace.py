"""Tests for the trace analysis utilities."""


from repro.fuzz.prog import Call, prog
from repro.machine.accesses import AccessType, MemoryAccess
from repro.profile.profiler import ProfiledAccess, TestProfile, profile_from_result
from repro.profile.trace import (
    access_breakdown,
    communication_matrix,
    hot_addresses,
    shared_objects,
    subsystem_of,
)

EMPTY = prog()


def mem(type, addr, size=8, ins="net.py:f:1", thread=0):
    return MemoryAccess(
        seq=0,
        thread=thread,
        type=AccessType.READ if type == "R" else AccessType.WRITE,
        addr=addr,
        size=size,
        value=0,
        ins=ins,
    )


def pa(type, addr, size, ins, value=0):
    return ProfiledAccess(
        type=AccessType.READ if type == "R" else AccessType.WRITE,
        addr=addr,
        size=size,
        value=value,
        ins=ins,
    )


class TestSubsystemOf:
    def test_strips_extension_and_rest(self):
        assert subsystem_of("net.py:NetSubsystem.f:12") == "net"
        assert subsystem_of("alloc.py:Allocator.kmalloc:90") == "alloc"


class TestBreakdownAndHotness:
    def test_breakdown_counts(self):
        accesses = [
            mem("R", 0x100, ins="net.py:a:1"),
            mem("W", 0x100, ins="net.py:a:2"),
            mem("R", 0x200, ins="fs.py:b:3"),
        ]
        breakdown = access_breakdown(accesses)
        assert breakdown["net"] == (1, 1)
        assert breakdown["fs"] == (1, 0)

    def test_hot_addresses_ordering(self):
        accesses = [mem("R", 0x100)] * 3 + [mem("R", 0x200)]
        hot = hot_addresses(accesses, top=2)
        assert hot[0] == (0x100, 3)
        assert hot[1] == (0x200, 1)

    def test_real_execution_breakdown(self, executor):
        result = executor.run_sequential(
            prog(Call("msgget", (1,)), Call("socket", (0,)))
        )
        breakdown = access_breakdown(result.shared_accesses())
        assert "rhashtable" in breakdown
        assert "alloc" in breakdown


class TestSharedObjects:
    def _profile(self, *accesses):
        return TestProfile(test_id=0, program=EMPTY, accesses=tuple(accesses), instructions=0)

    def test_adjacent_ranges_coalesce(self):
        profile = self._profile(
            pa("W", 0x100, 8, "a:1"), pa("R", 0x108, 8, "a:2")
        )
        objects = shared_objects([profile])
        assert len(objects) == 1
        assert objects[0].size == 16
        assert objects[0].readers == 1 and objects[0].writers == 1

    def test_distant_ranges_stay_separate(self):
        profile = self._profile(
            pa("W", 0x100, 8, "a:1"), pa("R", 0x500, 8, "a:2")
        )
        assert len(shared_objects([profile])) == 2

    def test_gap_parameter(self):
        profile = self._profile(
            pa("W", 0x100, 8, "a:1"), pa("R", 0x110, 8, "a:2")
        )
        assert len(shared_objects([profile], gap=4)) == 2
        assert len(shared_objects([profile], gap=16)) == 1


class TestCommunicationMatrix:
    def test_cross_subsystem_edges(self, executor):
        writer = prog(Call("msgget", (1,)))
        reader = prog(Call("semget", (1,)))
        pw = profile_from_result(0, writer, executor.run_sequential(writer))
        pr = profile_from_result(1, reader, executor.run_sequential(reader))
        matrix = communication_matrix([pw, pr])
        # Both families allocate: allocator metadata overlaps exist.
        assert any("alloc" in key for key in matrix)

    def test_empty_profiles(self):
        assert communication_matrix([]) == {}
