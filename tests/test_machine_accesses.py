"""Unit tests for memory-access records and value projection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.accesses import AccessType, MemoryAccess, project_value


def access(addr=0x100, size=4, value=0, type=AccessType.READ, **kw):
    defaults = dict(seq=0, thread=0, ins="k.py:f:1")
    defaults.update(kw)
    return MemoryAccess(type=type, addr=addr, size=size, value=value, **defaults)


class TestMemoryAccess:
    def test_end_and_predicates(self):
        a = access(addr=0x10, size=8, type=AccessType.WRITE)
        assert a.end == 0x18
        assert a.is_write and not a.is_read

    def test_overlap_detection(self):
        a = access(addr=0x100, size=4)
        assert a.overlaps(access(addr=0x102, size=4))
        assert a.overlaps(access(addr=0xFE, size=4))
        assert not a.overlaps(access(addr=0x104, size=4))
        assert not a.overlaps(access(addr=0xFC, size=4))

    def test_value_bytes_little_endian(self):
        a = access(size=4, value=0x11223344)
        assert a.value_bytes() == b"\x44\x33\x22\x11"

    def test_is_frozen(self):
        a = access()
        with pytest.raises(AttributeError):
            a.value = 1


class TestProjectValue:
    def test_full_window_is_identity(self):
        assert project_value(0x100, 4, 0xAABBCCDD, 0x100, 0x104) == 0xAABBCCDD

    def test_low_byte(self):
        assert project_value(0x100, 4, 0xAABBCCDD, 0x100, 0x101) == 0xDD

    def test_high_bytes(self):
        assert project_value(0x100, 4, 0xAABBCCDD, 0x102, 0x104) == 0xAABB

    def test_middle_window(self):
        assert project_value(0x100, 8, 0x1122334455667788, 0x103, 0x105) == 0x4455

    def test_window_outside_range_rejected(self):
        with pytest.raises(ValueError):
            project_value(0x100, 4, 0, 0x103, 0x105)
        with pytest.raises(ValueError):
            project_value(0x100, 4, 0, 0xFF, 0x101)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            project_value(0x100, 4, 0, 0x102, 0x102)

    def test_projection_matches_byte_slicing(self):
        value = 0x0807060504030201
        # bytes at 0x100..0x108 are 01 02 03 04 05 06 07 08
        assert project_value(0x100, 8, value, 0x101, 0x104) == 0x040302


@given(
    addr=st.integers(min_value=0, max_value=1 << 32),
    size=st.integers(min_value=1, max_value=8),
    value=st.integers(min_value=0),
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_property_projection_consistent_with_bytes(addr, size, value, data):
    """project_value agrees with slicing the little-endian byte string."""
    value &= (1 << (8 * size)) - 1
    lo = data.draw(st.integers(min_value=addr, max_value=addr + size - 1))
    hi = data.draw(st.integers(min_value=lo + 1, max_value=addr + size))
    raw = value.to_bytes(size, "little")
    expected = int.from_bytes(raw[lo - addr : hi - addr], "little")
    assert project_value(addr, size, value, lo, hi) == expected


@given(
    a_addr=st.integers(min_value=0, max_value=64),
    a_size=st.integers(min_value=1, max_value=8),
    b_addr=st.integers(min_value=0, max_value=64),
    b_size=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=80, deadline=None)
def test_property_overlap_is_symmetric(a_addr, a_size, b_addr, b_size):
    a = access(addr=a_addr, size=a_size)
    b = access(addr=b_addr, size=b_size)
    assert a.overlaps(b) == b.overlaps(a)
    # Definitionally: intersection non-empty.
    expected = max(a_addr, b_addr) < min(a_addr + a_size, b_addr + b_size)
    assert a.overlaps(b) == expected
