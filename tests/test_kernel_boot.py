"""Boot determinism and kernel plumbing tests."""

import pytest

from repro.kernel.kernel import MAX_FDS, Kernel, boot_kernel
from repro.machine.machine import Machine


class TestBootDeterminism:
    def test_two_boots_produce_identical_memory(self):
        """The PMC premise: every boot yields bit-identical state."""
        k1, s1 = boot_kernel()
        k2, s2 = boot_kernel()
        assert s1.pages == s2.pages
        assert s1.console == s2.console

    def test_globals_identical_across_boots(self):
        k1, _ = boot_kernel()
        k2, _ = boot_kernel()
        assert k1.globals == k2.globals

    def test_expected_subsystems_present(self, kernel):
        for name in ("fs", "blockdev", "net", "l2tp", "ipc", "tty", "sound"):
            assert name in kernel.subsystems

    def test_expected_syscalls_registered(self, kernel):
        expected = {
            "open", "close", "read", "write", "fsync", "fadvise", "ioctl",
            "mkdir", "lookup", "msgget", "msgctl", "msgsnd", "msgrcv",
            "socket", "connect", "sendmsg", "getsockname", "setsockopt",
            "route_update", "tty_open", "snd_ctl_add", "snd_ctl_info",
        }
        assert expected <= set(kernel.syscalls)

    def test_processes_have_distinct_fd_tables(self, kernel):
        assert len(kernel.procs) == 3  # 2 regular + 1 for 3-thread tests
        tables = {proc.fdtable for proc in kernel.procs}
        assert len(tables) == len(kernel.procs)


class TestStaticAlloc:
    def test_alignment(self):
        kernel = Kernel(Machine())
        a = kernel.static_alloc("a", 3)
        b = kernel.static_alloc("b", 8)
        assert b % 8 == 0
        assert b >= a + 3

    def test_duplicate_name_rejected(self):
        kernel = Kernel(Machine())
        kernel.static_alloc("x", 8)
        with pytest.raises(ValueError):
            kernel.static_alloc("x", 8)

    def test_anonymous_allocation(self):
        kernel = Kernel(Machine())
        addr = kernel.static_alloc("", 16)
        assert addr not in kernel.globals.values()

    def test_exhaustion_raises(self):
        kernel = Kernel(Machine())
        with pytest.raises(MemoryError):
            kernel.static_alloc("huge", kernel.machine.regions.globals_size + 1)


class TestRegistries:
    def test_duplicate_syscall_rejected(self):
        kernel = Kernel(Machine())
        handler = lambda ctx: iter(())
        kernel.register_syscall("foo", handler)
        with pytest.raises(ValueError):
            kernel.register_syscall("foo", handler)

    def test_duplicate_ioctl_rejected(self):
        kernel = Kernel(Machine())
        handler = lambda ctx, fd, arg: iter(())
        kernel.register_ioctl(42, handler)
        with pytest.raises(ValueError):
            kernel.register_ioctl(42, handler)

    def test_unknown_syscall_raises_keyerror(self, kernel):
        ctx = kernel.make_context(0)
        with pytest.raises(KeyError):
            # run_syscall is a generator: the dispatch error surfaces on
            # first advance.
            next(kernel.run_syscall(ctx, "no_such_call", ()))


class TestFdPlumbing:
    def test_fd_install_and_resolve(self, executor, kernel):
        from repro.fuzz.prog import Call, prog

        result = executor.run_sequential(prog(Call("open", (1,)), Call("open", (2,))))
        assert result.returns[0] == [0, 1]  # first two fds

    def test_bad_fd_returns_ebadf(self, executor):
        from repro.fuzz.prog import Call, prog
        from repro.kernel.errors import EBADF

        result = executor.run_sequential(prog(Call("read", (7, 1))))
        assert result.returns[0] == [EBADF]

    def test_fd_reuse_after_close(self, executor):
        from repro.fuzz.prog import Call, Res, prog

        result = executor.run_sequential(
            prog(Call("open", (1,)), Call("close", (Res(0),)), Call("open", (2,)))
        )
        assert result.returns[0] == [0, 0, 0]  # fd 0 reused

    def test_fd_table_fills_up(self, executor):
        from repro.fuzz.prog import Call, prog
        from repro.kernel.errors import EBADF

        calls = tuple(Call("open", (1,)) for _ in range(MAX_FDS + 1))
        result = executor.run_sequential(prog(*calls))
        assert result.returns[0][-1] == EBADF
        assert result.returns[0][:-1] == list(range(MAX_FDS))
