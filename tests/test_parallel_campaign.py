"""Parallel Stage 4: the WorkQueue-fed execution fleet.

The contract under test is the paper's distribution story (section
4.4.1): concurrent tests are independent work items, so spreading them
over workers — each owning a private kernel booted from the same
deterministic snapshot — must find exactly the same bugs as the serial
loop for the same seed, with the same trial counts and first-find
positions.
"""

from __future__ import annotations

import pytest

from repro.fuzz.prog import Call, prog
from repro.orchestrate.pipeline import Snowboard, SnowboardConfig, Stage4Task


CONFIG = SnowboardConfig(
    seed=7, corpus_budget=120, trials_per_pmc=8, max_instructions=40_000
)
BUDGET = 10


@pytest.fixture(scope="module")
def serial_campaign():
    sb = Snowboard(CONFIG).prepare()
    return sb.run_campaign("S-INS-PAIR", test_budget=BUDGET)


@pytest.fixture(scope="module")
def parallel_run():
    sb = Snowboard(CONFIG).prepare()
    campaign = sb.run_campaign("S-INS-PAIR", test_budget=BUDGET, workers=3)
    return sb, campaign


class TestSerialParallelEquivalence:
    def test_identical_bug_sets(self, serial_campaign, parallel_run):
        _, parallel = parallel_run
        assert parallel.bugs_found() == serial_campaign.bugs_found()

    def test_identical_summaries(self, serial_campaign, parallel_run):
        # Stronger than bug sets: trial counts, instructions, exercised
        # PMCs and first-find positions all survive parallelisation.
        _, parallel = parallel_run
        assert parallel.summary() == serial_campaign.summary()

    def test_identical_repro_packages(self, parallel_run):
        sb_parallel, _ = parallel_run
        sb_serial = Snowboard(CONFIG).prepare()
        sb_serial.run_campaign("S-INS-PAIR", test_budget=BUDGET)
        assert set(sb_parallel.repro_packages) == set(sb_serial.repro_packages)
        for bug_id, package in sb_serial.repro_packages.items():
            assert sb_parallel.repro_packages[bug_id].to_json() == package.to_json()

    def test_worker_count_recorded(self, serial_campaign, parallel_run):
        _, parallel = parallel_run
        assert serial_campaign.workers == 1
        assert parallel.workers == 3
        assert parallel.task_failures == 0

    def test_throughput_figures_populated(self, parallel_run):
        _, parallel = parallel_run
        assert parallel.wall_seconds > 0
        assert parallel.trials_per_second > 0
        assert parallel.executions_per_minute == pytest.approx(
            parallel.trials_per_second * 60
        )
        assert parallel.pages_per_trial > 0
        assert 0 < parallel.restore_fraction <= 1


class TestFailureSurfacing:
    def test_crashed_task_counted_not_merged(self, monkeypatch):
        sb = Snowboard(CONFIG).prepare()
        original = Snowboard._run_test_trials

        def crashy(self, executor, task: Stage4Task):
            if task.task_id == 1:
                raise RuntimeError("injected worker crash")
            return original(self, executor, task)

        monkeypatch.setattr(Snowboard, "_run_test_trials", crashy)
        campaign = sb.run_campaign("S-INS-PAIR", test_budget=4, workers=2)
        assert campaign.task_failures == 1
        # The crashed task still consumes its test index, so positions of
        # later finds stay aligned with a serial run.
        assert campaign.tested_pmcs == 4
        assert campaign.summary()["task_failures"] == 1
        # The deterministic crash was retried before being given up on.
        assert campaign.task_retries >= 1

    def test_all_factories_crash_campaign_terminates(self, monkeypatch):
        """Every worker boot fails: the campaign must complete cleanly
        with one task failure per test — no hang, no TypeError from the
        merge loop iterating a missing result."""
        sb = Snowboard(CONFIG).prepare()

        def broken_factory(self):
            def factory():
                raise RuntimeError("VM refused to boot")

            return factory

        monkeypatch.setattr(Snowboard, "_stage4_worker_factory", broken_factory)
        campaign = sb.run_campaign("S-INS-PAIR", test_budget=5, workers=3)
        assert campaign.task_failures == 5
        assert campaign.tested_pmcs == 5
        assert campaign.bugs_found() == {}
        assert campaign.worker_respawns > 0
        assert campaign.summary()["task_failures"] == 5

    def test_transient_worker_death_is_contained(self, monkeypatch):
        """A worker dying mid-task (BaseException) is respawned and the
        task re-executed deterministically — the campaign result is
        bit-identical to an undisturbed serial run."""
        serial = Snowboard(CONFIG).prepare().run_campaign(
            "S-INS-PAIR", test_budget=4
        )

        class WorkerDeath(BaseException):
            pass

        sb = Snowboard(CONFIG).prepare()
        original = Snowboard._run_test_trials
        state = {"killed": False}

        def dying(self, executor, task: Stage4Task):
            if task.task_id == 2 and not state["killed"]:
                state["killed"] = True
                raise WorkerDeath()
            return original(self, executor, task)

        monkeypatch.setattr(Snowboard, "_run_test_trials", dying)
        campaign = sb.run_campaign("S-INS-PAIR", test_budget=4, workers=2)
        assert campaign.task_failures == 0
        assert campaign.worker_respawns == 1
        assert campaign.task_retries == 1
        assert campaign.summary() == serial.summary()

    def test_missing_result_treated_as_task_failure(self):
        """A result dict without an entry for a task (dead worker pool
        edge) must count as a failure, not crash the merge."""
        sb = Snowboard(CONFIG).prepare()
        tests, _ = sb.generate_tests("S-INS-PAIR", limit=2)
        from repro.orchestrate.results import CampaignResult

        campaign = CampaignResult(strategy="t", workers=2)
        import repro.orchestrate.pipeline as pipeline_mod

        def no_results(work, factory, nworkers, **kwargs):
            return {}  # simulate: nothing ever completed

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(pipeline_mod, "run_workers", no_results)
            sb.execute_tests_parallel(tests[:2], campaign, workers=2)
        assert campaign.task_failures == 2
        assert campaign.tested_pmcs == 2


class TestIncidentalAdoptionParallel:
    def test_parallel_matches_serial_with_incidental_adoption(self):
        """adopt_incidental_pmcs shares the pair index across worker
        threads; it is precomputed before the fleet spawns, so parallel
        campaigns stay bit-identical to serial ones."""
        config = SnowboardConfig(
            seed=7,
            corpus_budget=100,
            trials_per_pmc=6,
            max_instructions=40_000,
            adopt_incidental_pmcs=True,
        )
        serial = Snowboard(config).prepare().run_campaign(
            "S-INS-PAIR", test_budget=6
        )
        sb = Snowboard(config).prepare()
        parallel = sb.run_campaign("S-INS-PAIR", test_budget=6, workers=3)
        assert sb._pair_index is not None  # precomputed, not lazily raced
        assert parallel.summary() == serial.summary()


class TestWorkerIsolation:
    def test_fixed_kernel_campaign_raises_no_alarms_in_parallel(self):
        config = SnowboardConfig(
            seed=7,
            corpus_budget=80,
            trials_per_pmc=4,
            max_instructions=40_000,
            fixed_kernel=True,
        )
        sb = Snowboard(config).prepare()
        campaign = sb.run_campaign("S-INS-PAIR", test_budget=5, workers=2)
        assert campaign.bugs_found() == {}

    def test_setup_program_honored_by_workers(self):
        setup = prog(Call("msgget", (3,)))
        config = SnowboardConfig(
            seed=5,
            corpus_budget=60,
            trials_per_pmc=4,
            max_instructions=40_000,
            setup_program=setup,
        )
        serial = Snowboard(config).prepare().run_campaign(
            "S-INS-PAIR", test_budget=4
        )
        parallel = Snowboard(config).prepare().run_campaign(
            "S-INS-PAIR", test_budget=4, workers=2
        )
        assert parallel.summary() == serial.summary()
