"""Tests for sequential profiling: filtering, dedup, df_leader."""


from repro.fuzz.prog import Call, Res, prog
from repro.kernel.kernel import boot_kernel
from repro.machine.accesses import AccessType, MemoryAccess
from repro.machine.snapshot import Snapshot
from repro.profile.profiler import Profiler, _find_df_leaders, profile_corpus
from repro.sched.executor import Executor


def mem(thread, type, addr, size, value, ins, seq=0, stack=False):
    return MemoryAccess(
        seq=seq,
        thread=thread,
        type=AccessType.READ if type == "R" else AccessType.WRITE,
        addr=addr,
        size=size,
        value=value,
        ins=ins,
        is_stack=stack,
    )


class TestProfileDistillation:
    def test_stack_accesses_pruned(self):
        kernel, _ = boot_kernel()

        def sys_stacky(ctx):
            cell = ctx.stack_alloc(8)
            yield from ctx.store_word(cell, 1)
            value = yield from ctx.load_word(cell)
            return value

        kernel.register_syscall("stacky", sys_stacky)
        snapshot = Snapshot.capture(kernel.machine)
        executor = Executor(kernel, snapshot)
        profile = Profiler(executor).profile(0, prog(Call("stacky", ())))
        assert all("stacky" not in a.ins for a in profile.accesses)

    def test_duplicate_accesses_collapsed(self, executor):
        # Two identical msgget calls make identical bucket reads.
        program = prog(Call("msgget", (1,)), Call("msgget", (1,)))
        profile = Profiler(executor).profile(0, program)
        keys = [a.key() for a in profile.accesses]
        assert len(keys) == len(set(keys))

    def test_reads_and_writes_partition(self, executor):
        profile = Profiler(executor).profile(0, prog(Call("msgget", (1,))))
        assert set(profile.reads) | set(profile.writes) == set(profile.accesses)
        assert not set(profile.reads) & set(profile.writes)

    def test_profile_corpus_reuses_results(self, executor):
        from repro.fuzz.corpus import build_corpus

        corpus = build_corpus(executor, seed=2, budget=30)
        profiles = profile_corpus(corpus)
        assert len(profiles) == len(corpus)
        assert [p.test_id for p in profiles] == [e.test_id for e in corpus]

    def test_profile_ids_match_re_execution(self, executor):
        """Profiling twice yields identical access sets (determinism)."""
        program = prog(Call("open", (1,)), Call("write", (Res(0), 9)))
        p1 = Profiler(executor).profile(0, program)
        p2 = Profiler(executor).profile(0, program)
        assert {a.key() for a in p1.accesses} == {a.key() for a in p2.accesses}


class TestDfLeaders:
    def test_two_reads_same_value_different_ins_marks_leader(self):
        stream = [
            mem(0, "R", 0x100, 8, 5, "a.py:f:1", seq=0),
            mem(0, "R", 0x100, 8, 5, "a.py:f:2", seq=1),
        ]
        leaders = _find_df_leaders(stream)
        assert leaders == {(AccessType.READ, 0x100, 8, 5, "a.py:f:1")}

    def test_same_instruction_is_not_a_double_fetch(self):
        stream = [
            mem(0, "R", 0x100, 8, 5, "a.py:f:1", seq=0),
            mem(0, "R", 0x100, 8, 5, "a.py:f:1", seq=1),
        ]
        assert _find_df_leaders(stream) == set()

    def test_intervening_write_clears(self):
        stream = [
            mem(0, "R", 0x100, 8, 5, "a.py:f:1", seq=0),
            mem(0, "W", 0x100, 8, 6, "a.py:f:9", seq=1),
            mem(0, "R", 0x100, 8, 6, "a.py:f:2", seq=2),
        ]
        assert _find_df_leaders(stream) == set()

    def test_partial_intervening_write_clears(self):
        stream = [
            mem(0, "R", 0x100, 8, 5, "a.py:f:1", seq=0),
            mem(0, "W", 0x104, 2, 6, "a.py:f:9", seq=1),  # overlaps bytes 4-5
            mem(0, "R", 0x100, 8, 5, "a.py:f:2", seq=2),
        ]
        assert _find_df_leaders(stream) == set()

    def test_different_values_not_a_double_fetch(self):
        stream = [
            mem(0, "R", 0x100, 8, 5, "a.py:f:1", seq=0),
            mem(0, "R", 0x100, 8, 7, "a.py:f:2", seq=1),
        ]
        assert _find_df_leaders(stream) == set()

    def test_stack_reads_ignored(self):
        stream = [
            mem(0, "R", 0x100, 8, 5, "a.py:f:1", seq=0, stack=True),
            mem(0, "R", 0x100, 8, 5, "a.py:f:2", seq=1, stack=True),
        ]
        assert _find_df_leaders(stream) == set()

    def test_rht_ptr_produces_df_leader_end_to_end(self, executor):
        program = prog(Call("msgget", (1,)), Call("msgget", (1,)))
        profile = Profiler(executor).profile(0, program)
        assert any(a.df_leader and "rht_ptr" in a.ins for a in profile.accesses)
