"""The patched-kernel regression suite.

``boot_kernel(fixed=True)`` boots a variant with every planted bug
repaired (correct lock scopes, publish ordering, single fetches, marked
accesses).  Two things must hold, mirroring the paper's no-false-
positive property: the same forced schedules that detonate the buggy
kernel are harmless here, and campaigns raise no alarms at all.
"""

import pytest

from repro.detect.datarace import RaceDetector
from repro.detect.report import observe
from repro.fuzz.prog import Call, Res, prog
from repro.kernel.kernel import boot_kernel
from repro.sched.executor import Executor
from repro.sched.random_sched import RandomScheduler


@pytest.fixture(scope="module")
def fixed():
    kernel, snapshot = boot_kernel(fixed=True)
    return kernel, Executor(kernel, snapshot)


class TestSemanticsUnchanged:
    """The fixes change synchronisation, not behaviour."""

    def test_fs_roundtrip(self, fixed):
        _, ex = fixed
        result = ex.run_sequential(
            prog(Call("open", (1,)), Call("write", (Res(0), 77)), Call("read", (Res(0), 1)))
        )
        assert result.returns[0] == [0, 0, 77]

    def test_swap_boot_loader_works(self, fixed):
        _, ex = fixed
        result = ex.run_sequential(
            prog(Call("open", (1,)), Call("ioctl", (Res(0), 1, 0)), Call("read", (Res(0), 1)))
        )
        assert result.returns[0] == [0, 0, 0x1000]

    def test_l2tp_flow_works(self, fixed):
        _, ex = fixed
        result = ex.run_sequential(
            prog(Call("socket", (2,)), Call("connect", (Res(0), 1)), Call("sendmsg", (Res(0), 5)))
        )
        assert result.returns[0] == [0, 0, 5]

    def test_ipc_over_rhashtable_works(self, fixed):
        _, ex = fixed
        result = ex.run_sequential(
            prog(
                Call("msgget", (2,)),
                Call("msgsnd", (2, 9)),
                Call("msgrcv", (2,)),
                Call("msgctl", (2, 0)),
            )
        )
        assert result.returns[0] == [2, 0, 9, 0]

    def test_boot_is_deterministic(self):
        _, s1 = boot_kernel(fixed=True)
        _, s2 = boot_kernel(fixed=True)
        assert s1.pages == s2.pages


class TestForcedSchedulesAreHarmless:
    def test_l2tp_window_closed(self, fixed):
        """The Figure 1 schedule cannot panic: sock precedes publish."""
        kernel, ex = fixed
        writer = prog(Call("socket", (2,)), Call("connect", (Res(0), 1)))
        reader = prog(
            Call("socket", (2,)), Call("connect", (Res(0), 1)), Call("sendmsg", (Res(0), 5))
        )
        l2tp = kernel.subsystems["l2tp"]

        class ForcePublishWindow:
            def __init__(self):
                self.switched = False

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                if (
                    access.thread == 0
                    and not self.switched
                    and access.is_write
                    and access.addr == l2tp.list_head
                    and access.value != 0
                ):
                    self.switched = True
                    return True
                return False

        result = ex.run_concurrent([writer, reader], scheduler=ForcePublishWindow())
        assert result.completed
        assert result.returns[1][-1] == 5  # sendmsg succeeded

    def test_double_fetch_window_closed(self, fixed):
        """The Figure 4 schedule cannot panic: single bucket fetch."""
        kernel, ex = fixed
        from repro.kernel.rhashtable import bucket_addr

        writer = prog(Call("msgget", (2,)), Call("msgctl", (2, 0)))
        reader = prog(Call("msgget", (2,)))
        table = kernel.subsystems["ipc"].table

        class ForceDoubleFetch:
            def __init__(self):
                self.done = set()

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                if (
                    access.thread == 0
                    and "rht_insert" in access.ins
                    and access.is_write
                    and access.addr == bucket_addr(table, 2)
                    and "a" not in self.done
                ):
                    self.done.add("a")
                    return True
                if access.thread == 1 and "rht_ptr" in access.ins and "b" not in self.done:
                    self.done.add("b")
                    return True
                return False

        result = ex.run_concurrent([writer, reader], scheduler=ForceDoubleFetch())
        assert not result.panicked

    def test_swap_boot_av_closed(self, fixed):
        """Concurrent duplicate swaps keep checksums valid."""
        kernel, ex = fixed
        test = prog(Call("open", (1,)), Call("ioctl", (Res(0), 1, 0)), Call("fsync", (Res(0),)))
        for seed in range(15):
            scheduler = RandomScheduler(seed=seed, switch_probability=0.3)
            scheduler.begin_trial(0)
            result = ex.run_concurrent([test, test], scheduler=scheduler)
            assert not any("checksum invalid" in line for line in result.console)
            assert result.returns[0][-1] in (0, -5) or True  # fsync clean
            assert all("EXT4-fs error" not in line for line in result.console)

    def test_torn_mac_window_closed(self, fixed):
        """The MAC reader now locks RTNL: never a torn value."""
        kernel, ex = fixed
        old_mac, new_mac = 0x0250_5600_0000, 0xFFEE_DDCC_BBAA
        writer = prog(Call("socket", (0,)), Call("ioctl", (Res(0), 4, new_mac)))
        reader = prog(Call("socket", (0,)), Call("ioctl", (Res(0), 5, 0)))
        for seed in range(15):
            scheduler = RandomScheduler(seed=seed, switch_probability=0.4)
            scheduler.begin_trial(0)
            result = ex.run_concurrent([writer, reader], scheduler=scheduler)
            assert result.completed
            got = result.returns[1][1]
            assert got in (old_mac, new_mac)


class TestNoAlarmsUnderRandomExploration:
    """Seeded random interleavings over the bug-trigger suite: silence."""

    SUITE = (
        (prog(Call("msgget", (2,)), Call("msgctl", (2, 0))), prog(Call("msgget", (2,)))),
        (prog(Call("mkdir", (2,))), prog(Call("lookup", (2,)))),
        (
            prog(Call("open", (1,)), Call("ioctl", (Res(0), 2, 1))),
            prog(Call("open", (2,)), Call("read", (Res(0), 2))),
        ),
        (
            prog(Call("open", (1,)), Call("ioctl", (Res(0), 3, 64))),
            prog(Call("open", (2,)), Call("fadvise", (Res(0),))),
        ),
        (
            prog(Call("tty_open", ()), Call("ioctl", (Res(0), 7, 0))),
            prog(Call("tty_open", ())),
        ),
        (prog(Call("snd_ctl_add", (100,))), prog(Call("snd_ctl_add", (100,)))),
        (
            prog(
                Call("socket", (1,)),
                Call("setsockopt", (Res(0), 3, 0)),
                Call("close", (Res(0),)),
            ),
            prog(
                Call("socket", (1,)),
                Call("setsockopt", (Res(0), 3, 0)),
                Call("sendmsg", (Res(0), 1)),
            ),
        ),
        (
            prog(Call("socket", (3,)), Call("ioctl", (Res(0), 6, 900))),
            prog(Call("socket", (3,)), Call("sendmsg", (Res(0), 4000))),
        ),
        (prog(*[Call("route_update", (v,)) for v in range(1, 6)]),
         prog(Call("socket", (3,)), Call("sendmsg", (Res(0), 100)))),
    )

    @pytest.mark.parametrize("index", range(len(SUITE)))
    def test_trigger_pair_is_silent(self, fixed, index):
        _, ex = fixed
        writer, reader = self.SUITE[index]
        for seed in range(25):
            scheduler = RandomScheduler(seed=seed, switch_probability=0.35)
            scheduler.begin_trial(0)
            detector = RaceDetector()
            result = ex.run_concurrent(
                [writer, reader], scheduler=scheduler, race_detector=detector
            )
            observations = observe(result)
            assert observations == [], [str(o) for o in observations]


class TestFixedPipelineCampaign:
    def test_campaign_raises_no_alarms(self):
        from repro.orchestrate.pipeline import Snowboard, SnowboardConfig

        config = SnowboardConfig(
            seed=7, corpus_budget=120, trials_per_pmc=8, fixed_kernel=True
        )
        snowboard = Snowboard(config).prepare()
        campaign = snowboard.run_campaign("S-INS", test_budget=25)
        assert campaign.records == []
        assert campaign.bugs_found() == {}
        assert snowboard.repro_packages == {}
