"""Smoke tests: the example scripts run and produce their headline output.

The fast case studies run end to end; the campaign-scale examples are
only checked for importability and a ``main`` entry point (the benches
cover their logic at full scale).
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

FAST_EXAMPLES = {
    "case_l2tp_order_violation.py": "KERNEL PANIC",
    "case_mac_torn_read.py": "TORN MAC",
    "case_rhashtable_double_fetch.py": "KERNEL PANIC",
}

ALL_EXAMPLES = (
    "quickstart.py",
    "case_l2tp_order_violation.py",
    "case_mac_torn_read.py",
    "case_rhashtable_double_fetch.py",
    "strategy_comparison.py",
    "distributed_campaign.py",
    "postmortem_triage.py",
    "minimal_reproducer.py",
    "inspect_communication.py",
)


def run_example(name: str) -> str:
    path = os.path.join(EXAMPLES_DIR, name)
    completed = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
        check=True,
    )
    return completed.stdout


@pytest.mark.parametrize("name,expected", sorted(FAST_EXAMPLES.items()))
def test_case_study_examples_expose_their_bug(name, expected):
    output = run_example(name)
    assert expected in output


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_files_are_wellformed(name):
    path = os.path.join(EXAMPLES_DIR, name)
    with open(path) as handle:
        source = handle.read()
    compiled = compile(source, path, "exec")
    assert compiled is not None
    assert "def main()" in source
    assert '__name__ == "__main__"' in source
