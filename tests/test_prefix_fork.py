"""Sequential-prefix fork memoization: invisibility is the contract.

Every trial served by :class:`PrefixMemo` — forked from a mid-trial
delta snapshot or fully memoized — must be bit-identical to the same
trial run from the boot snapshot: the access trace, console, returns,
switch points, race reports AND the scheduler's post-trial state (RNG
draws, learned flags, adoption choices).  The tests below check that
contract at three levels:

* unit: :class:`ForkSnapshot` delta-capture guards (label collisions,
  untracked machines, foreign bases) and restore re-dirtying;
* trial: explicit scenarios plus hypothesis-generated programs, forked
  streams compared field-for-field against from-boot streams, including
  a switch at the very first instruction and a panic inside the prefix;
* campaign: memo-on and memo-off summaries are identical across the
  serial, thread-fleet and process-fleet paths, while the
  history-dependent savings counters are visible and quarantined from
  funnel equivalence.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detect.datarace import RaceDetector
from repro.fuzz.generator import ProgramGenerator
from repro.fuzz.prog import Call, Res, prog
from repro.kernel.kernel import boot_kernel
from repro.machine.snapshot import ForkSnapshot, ForkSnapshotError, Snapshot
from repro.obs import MemorySink, Observer
from repro.obs.stats import FUNNEL_LAYOUT, HISTORY_DEPENDENT
from repro.orchestrate.fleet import (
    WIRE_VERSION,
    TaskEnvelope,
    outcome_from_obj,
    outcome_to_obj,
)
from repro.orchestrate.pipeline import (
    Snowboard,
    SnowboardConfig,
    Stage4Task,
    TrialOutcome,
)
from repro.pmc.identify import identify_pmcs
from repro.profile.profiler import profile_from_result
from repro.sched.executor import Executor
from repro.sched.prefixfork import PRUNE_MIN_TRIALS, PrefixMemo
from repro.sched.random_sched import RandomScheduler
from repro.sched.snowboard import SnowboardScheduler

GOLDEN_CONFIG = dict(seed=7, corpus_budget=120, trials_per_pmc=8)
TEST_BUDGET = 8


# -- shared harness -----------------------------------------------------------


def result_fields(result):
    """Every observable field of an ExecutionResult, comparable."""
    return dict(
        accesses=list(result.accesses.iter_fields()),
        console=result.console,
        returns=result.returns,
        panicked=result.panicked,
        panic_message=result.panic_message,
        deadlocked=result.deadlocked,
        budget_exceeded=result.budget_exceeded,
        instructions=result.instructions,
        switches=result.switches,
        switch_points=result.switch_points,
        races=[repr(r) for r in result.races],
    )


def scheduler_state(scheduler):
    """The scheduler's cross-trial state (flags, adoption, RNG history)."""
    out = {}
    for attr in ("flags", "_pmc_sigs", "last_access", "_adopted", "current_pmcs"):
        if hasattr(scheduler, attr):
            out[attr] = repr(getattr(scheduler, attr))
    return out


def assert_memo_equivalent(executor, writer, reader, make_scheduler, trials, pmc=None):
    """Run ``trials`` from boot and via PrefixMemo; demand bit-identity."""
    base_sched = make_scheduler()
    memo_sched = make_scheduler()
    memo = PrefixMemo(executor, writer, reader, pmc=pmc)
    forked_flags = []
    for trial in range(trials):
        base_sched.begin_trial(trial)
        base = executor.run_concurrent(
            [writer, reader], scheduler=base_sched, race_detector=RaceDetector()
        )
        base_sched.end_trial(base)

        memo_sched.begin_trial(trial)
        detector = RaceDetector()
        result, forked = memo.run_trial(memo_sched, detector)
        memo_sched.end_trial(result)
        forked_flags.append(forked)

        assert result_fields(result) == result_fields(base), f"trial {trial}"
        assert scheduler_state(memo_sched) == scheduler_state(base_sched), (
            f"trial {trial} scheduler state diverged"
        )
    return forked_flags


@pytest.fixture(scope="module")
def env():
    """Executor plus the l2tp PMC pair (the SB12 publication bug)."""
    kernel, snapshot = boot_kernel()
    executor = Executor(kernel, snapshot)
    writer = prog(Call("socket", (2,)), Call("connect", (Res(0), 1)))
    reader = prog(
        Call("socket", (2,)), Call("connect", (Res(0), 1)), Call("sendmsg", (Res(0), 5))
    )
    pw = profile_from_result(0, writer, executor.run_sequential(writer))
    pr = profile_from_result(1, reader, executor.run_sequential(reader))
    pmcset = identify_pmcs([pw, pr])
    pmc = next(
        p
        for p in pmcset
        if (0, 1) in pmcset.pairs(p) and "l2tp_tunnel_register" in p.write.ins
    )
    return executor, writer, reader, pmc, list(pmcset)


# -- ForkSnapshot delta-capture guards (the mid-trial snapshot primitive) -----


class TestForkSnapshot:
    def setup_method(self):
        self.kernel, self.base = boot_kernel()
        self.executor = Executor(self.kernel, self.base)
        self.machine = self.kernel.machine

    def _shared_addr(self):
        """A mapped, non-stack address plus its boot-time value."""
        result = self.executor.run_sequential(prog(Call("msgget", (1,))))
        access = next(a for a in result.accesses if a.is_write and not a.is_stack)
        self.base.restore(self.machine)
        return access.addr, access.size, self.machine.memory.read_int(
            access.addr, access.size
        )

    def test_label_collision_with_base_is_rejected(self):
        self.base.restore(self.machine)
        with pytest.raises(ForkSnapshotError, match="collides"):
            ForkSnapshot.capture(self.machine, self.base, label=self.base.label)

    def test_untracked_machine_is_rejected(self):
        self.base.restore(self.machine)
        self.machine.invalidate_restore_tracking()
        with pytest.raises(ForkSnapshotError, match="not\\s+incrementally tracked"):
            ForkSnapshot.capture(self.machine, self.base, label="fork@0")

    def test_foreign_base_is_rejected(self):
        self.base.restore(self.machine)
        other = Snapshot.capture(self.machine, label="other")
        # The machine is tracked against ``base``; capturing a delta
        # against ``other`` would record the wrong page set.
        with pytest.raises(ForkSnapshotError):
            ForkSnapshot.capture(self.machine, other, label="fork@0")

    def test_restore_reproduces_fork_point_and_redirties(self):
        addr, size, boot_value = self._shared_addr()
        sentinel = boot_value ^ 1
        memory = self.machine.memory
        memory.write_int(addr, size, sentinel)
        fork = ForkSnapshot.capture(self.machine, self.base, label="fork@test")
        assert fork.overrides, "dirty write must appear in the delta"

        self.base.restore(self.machine)
        assert memory.read_int(addr, size) == boot_value
        pages = fork.restore(self.machine)
        assert memory.read_int(addr, size) == sentinel
        assert pages >= len(fork.overrides)
        # The override write must count as dirty again: the *next* base
        # restore has to undo it, or later trials run from a poisoned
        # snapshot.
        self.base.restore(self.machine)
        assert memory.read_int(addr, size) == boot_value

    def test_capture_is_delta_sized(self):
        addr, size, boot_value = self._shared_addr()
        self.machine.memory.write_int(addr, size, boot_value ^ 1)
        fork = ForkSnapshot.capture(self.machine, self.base, label="fork@delta")
        assert len(fork.overrides) < len(self.base.pages)


# -- trial-level bit-identity -------------------------------------------------


class TestTrialBitIdentity:
    def test_snowboard_scheduler(self, env):
        executor, writer, reader, pmc, _ = env
        flags = assert_memo_equivalent(
            executor, writer, reader,
            lambda: SnowboardScheduler(pmc, seed=3), trials=24, pmc=pmc,
        )
        assert any(flags), "repeated switch positions must be served as forks"

    def test_snowboard_adoption_path(self, env):
        """end_trial adoption draws depend on total RNG consumption."""
        executor, writer, reader, pmc, universe = env
        assert_memo_equivalent(
            executor, writer, reader,
            lambda: SnowboardScheduler(pmc, seed=11, universe=universe[:40], max_adopted=3),
            trials=16, pmc=pmc,
        )

    def test_random_scheduler(self, env):
        executor, *_ = env
        writer, reader = prog(Call("mkdir", (2,))), prog(Call("lookup", (2,)))
        assert_memo_equivalent(
            executor, writer, reader,
            lambda: RandomScheduler(seed=7, switch_probability=0.5), trials=16,
        )

    def test_switch_at_first_instruction(self, env):
        executor, *_ = env
        writer, reader = prog(Call("mkdir", (2,))), prog(Call("lookup", (2,)))
        flags = assert_memo_equivalent(
            executor, writer, reader,
            lambda: RandomScheduler(seed=1, switch_probability=1.0), trials=6,
        )
        assert flags[1:] == [True] * 5, "identical first-switch position must hit"

    def test_never_switching_trials_are_fully_memoized(self, env):
        executor, *_ = env
        writer, reader = prog(Call("mkdir", (2,))), prog(Call("lookup", (2,)))
        memo = PrefixMemo(executor, writer, reader)
        scheduler = RandomScheduler(seed=1, switch_probability=0.0)
        for trial in range(3):
            scheduler.begin_trial(trial)
            result, forked = memo.run_trial(scheduler, RaceDetector())
            scheduler.end_trial(result)
            assert forked, "no-switch trials never touch the machine"
            assert result.switches == 0
            assert result.pages_restored == 0
        # ... and the memoized stream still matches from-boot execution.
        assert_memo_equivalent(
            executor, writer, reader,
            lambda: RandomScheduler(seed=1, switch_probability=0.0), trials=3,
        )

    def test_panic_inside_prefix(self, env):
        """A writer that panics solo truncates the prefix; still identical."""
        executor, *_ = env
        writer, reader = prog(Call("lookup", (9,))), prog(Call("lookup", (2,)))
        assert_memo_equivalent(
            executor, writer, reader,
            lambda: RandomScheduler(seed=3, switch_probability=0.4), trials=8,
        )

    def test_disabled_memo_falls_back_to_plain_execution(self, env):
        executor, writer, reader, pmc, _ = env
        memo = PrefixMemo(executor, writer, reader, pmc=pmc, enabled=False)
        assert not memo.active
        scheduler = SnowboardScheduler(pmc, seed=3)
        scheduler.begin_trial(0)
        result, forked = memo.run_trial(scheduler, RaceDetector())
        assert not forked
        assert result.instructions > 0


class TestPrefixForkProperties:
    """Hypothesis: memo invisibility holds for arbitrary generated programs."""

    @given(
        seed=st.integers(min_value=0, max_value=2000),
        probability=st.sampled_from([0.0, 0.3, 1.0]),
    )
    @settings(max_examples=12, deadline=None)
    def test_generated_programs_memo_equivalence(self, env, seed, probability):
        executor, *_ = env
        writer = ProgramGenerator(seed=seed).generate()
        reader = ProgramGenerator(seed=seed + 1).generate()
        assert_memo_equivalent(
            executor, writer, reader,
            lambda: RandomScheduler(seed=seed, switch_probability=probability),
            trials=4,
        )

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=8, deadline=None)
    def test_generated_self_pairs_with_adversarial_switching(self, env, seed):
        executor, *_ = env
        program = ProgramGenerator(seed=seed).generate()
        assert_memo_equivalent(
            executor, program, program,
            lambda: RandomScheduler(seed=seed, switch_probability=1.0),
            trials=3,
        )


# -- pruning plan -------------------------------------------------------------


class TestPlanTrials:
    def test_prune_off_runs_everything(self, env):
        executor, writer, reader, pmc, _ = env
        memo = PrefixMemo(executor, writer, reader, pmc=pmc, prune=False)
        assert memo.plan_trials(40) == (40, 0)

    def test_small_budgets_are_never_pruned(self, env):
        executor, writer, reader, pmc, _ = env
        memo = PrefixMemo(executor, writer, reader, pmc=pmc, prune=True)
        assert memo.plan_trials(PRUNE_MIN_TRIALS) == (PRUNE_MIN_TRIALS, 0)

    def test_no_pmc_means_no_pruning(self, env):
        executor, writer, reader, _, _ = env
        memo = PrefixMemo(executor, writer, reader, pmc=None, prune=True)
        assert memo.plan_trials(40) == (40, 0)

    def test_plan_is_deterministic_and_conserves_budget(self, env):
        executor, writer, reader, pmc, _ = env
        memo = PrefixMemo(executor, writer, reader, pmc=pmc, prune=True)
        effective, pruned = memo.plan_trials(40)
        assert (effective, pruned) == memo.plan_trials(40)
        assert effective + pruned == 40
        assert PRUNE_MIN_TRIALS <= effective <= 40

    def test_pruned_stream_is_prefix_of_unpruned(self, env):
        """Trials below the bound run with unchanged seeds."""
        executor, writer, reader, pmc, _ = env
        test_obj = None
        from repro.orchestrate.pipeline import ConcurrentTest, run_task_trials

        test_obj = ConcurrentTest(
            writer=writer, reader=reader, writer_test=0, reader_test=1, pmc=pmc
        )
        full, _ = run_task_trials(
            executor,
            Stage4Task(task_id=0, test=test_obj, trials=24, prune_commuting=False),
            SnowboardScheduler(pmc, seed=5),
        )
        pruned, _ = run_task_trials(
            executor,
            Stage4Task(task_id=0, test=test_obj, trials=24, prune_commuting=True),
            SnowboardScheduler(pmc, seed=5),
        )
        assert 0 < len(pruned) <= len(full)
        for mine, theirs in zip(pruned, full):
            assert mine.observations == theirs.observations
            assert mine.instructions == theirs.instructions


# -- campaign-level invisibility and savings counters -------------------------


def run_summary(workers=1, fleet="threads", **overrides):
    config = SnowboardConfig(**GOLDEN_CONFIG, **overrides)
    campaign = Snowboard(config).run_campaign(
        "S-INS-PAIR", test_budget=TEST_BUDGET, workers=workers, fleet=fleet
    )
    return campaign.summary()


class TestCampaignEquivalence:
    @pytest.fixture(scope="class")
    def memo_off(self):
        return run_summary(prefix_fork=False)

    def test_serial_memo_on_equals_memo_off(self, memo_off):
        assert run_summary() == memo_off

    def test_thread_fleet_memo_on_equals_memo_off(self, memo_off):
        assert run_summary(workers=2) == memo_off

    def test_process_fleet_memo_on_equals_memo_off(self, memo_off):
        assert run_summary(workers=2, fleet="processes") == memo_off


class TestSavingsCounters:
    def run_traced(self, **overrides):
        config = SnowboardConfig(
            seed=7, corpus_budget=120, trials_per_pmc=24, **overrides
        )
        obs = Observer(MemorySink())
        campaign = Snowboard(config, observer=obs).run_campaign(
            "S-INS-PAIR", test_budget=10
        )
        return campaign, obs

    def test_fork_hits_are_counted(self):
        _, obs = self.run_traced()
        assert obs.metrics.counter_value("stage4.prefix_fork_hits") > 0

    def test_pruned_trials_are_credited_and_yield_preserved(self):
        base, _ = self.run_traced(prune_commuting=False)
        pruned, obs = self.run_traced(prune_commuting=True)
        credited = obs.metrics.counter_value("stage4.trials_pruned")
        assert credited > 0
        assert pruned.trials + credited <= base.trials + credited
        assert pruned.trials < base.trials
        assert pruned.summary()["bugs"] == base.summary()["bugs"]
        assert pruned.summary()["observations"] == base.summary()["observations"]

    def test_counters_are_history_dependent_funnel_rows(self):
        keys = {key for _, _, key in FUNNEL_LAYOUT}
        assert "stage4.prefix_fork_hits" in keys
        assert "stage4.trials_pruned" in keys
        assert "stage4.prefix_fork_hits" in HISTORY_DEPENDENT
        assert "stage4.trials_pruned" in HISTORY_DEPENDENT


# -- wire format --------------------------------------------------------------


class TestWireV2:
    def test_wire_version_bumped(self):
        # v2 added the memo knobs below; v3 added heartbeat/hello
        # envelopes and generation-stamped results for the transport
        # layer.  The roundtrip tests in this class pin the v2 fields.
        assert WIRE_VERSION == 3

    def test_outcome_roundtrips_forked_flag(self):
        outcome = TrialOutcome(
            trial=3,
            instructions=17,
            pages_restored=2,
            restore_seconds=0.0,
            switch_points=(4, 9),
            forked=True,
        )
        decoded = outcome_from_obj(outcome_to_obj(outcome))
        assert decoded.forked is True
        assert decoded == outcome
        plain = TrialOutcome(
            trial=0, instructions=1, pages_restored=0, restore_seconds=0.0
        )
        assert outcome_from_obj(outcome_to_obj(plain)).forked is False

    def test_task_envelope_roundtrips_memo_knobs(self, env):
        _, writer, reader, pmc, _ = env
        from repro.orchestrate.pipeline import ConcurrentTest

        test_obj = ConcurrentTest(
            writer=writer, reader=reader, writer_test=0, reader_test=1, pmc=pmc
        )
        task = Stage4Task(
            task_id=5,
            test=test_obj,
            trials=8,
            prefix_fork=False,
            prune_commuting=True,
        )
        decoded = TaskEnvelope.from_task(task).to_task()
        assert decoded.prefix_fork is False
        assert decoded.prune_commuting is True
