"""Tests for the orchestration layer: queue, results, pipeline."""

import pytest

from repro.detect.report import observe
from repro.orchestrate.pipeline import (
    DUPLICATE_PAIRING,
    RANDOM_PAIRING,
    RANDOM_S_INS_PAIR,
    Snowboard,
    SnowboardConfig,
)
from repro.orchestrate.queue import TIMED_OUT, TaskFailure, WorkQueue, run_workers
from repro.orchestrate.results import CampaignResult
from repro.sched.executor import ExecutionResult


class TestWorkQueue:
    def test_fifo_results(self):
        work = WorkQueue()
        for i in range(10):
            work.put(i)
        results = run_workers(work, lambda: (lambda x: x * 2), nworkers=3)
        assert results == {i: i * 2 for i in range(10)}

    def test_worker_factory_called_per_worker(self):
        created = []

        def factory():
            created.append(1)
            return lambda x: x

        work = WorkQueue()
        work.put(0)
        run_workers(work, factory, nworkers=4)
        assert len(created) == 4

    def test_empty_queue_completes(self):
        work = WorkQueue()
        assert run_workers(work, lambda: (lambda x: x), nworkers=2) == {}

    def test_task_ids_are_sequential(self):
        work = WorkQueue()
        ids = [work.put(f"p{i}") for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_get_timeout_returns_sentinel_not_raises(self):
        # Regression: a timeout used to leak queue.Empty to the caller
        # even though the docstring promised "None means shutdown".
        work = WorkQueue()
        assert work.get(timeout=0.01) is TIMED_OUT

    def test_timed_out_is_distinct_from_shutdown(self):
        work = WorkQueue()
        work.shutdown(nworkers=1)
        assert work.get(timeout=0.01) is None  # shutdown sentinel
        assert work.get(timeout=0.01) is TIMED_OUT  # nothing left

    def test_pending_excludes_shutdown_sentinels(self):
        # Regression: pending() used to count shutdown sentinels as work.
        work = WorkQueue()
        work.put("real")
        work.put("real2")
        work.shutdown(nworkers=3)
        assert work.pending() == 2
        assert work.get() is not None
        assert work.pending() == 1

    def test_pending_zero_after_drain(self):
        work = WorkQueue()
        work.put("only")
        work.shutdown(nworkers=2)
        work.get()  # the real task
        assert work.pending() == 0
        work.get()  # one sentinel
        assert work.pending() == 0

    def test_worker_exception_wrapped_as_task_failure(self):
        # Regression: a worker exception used to be stored bare, making it
        # indistinguishable from a task that *returns* an exception object.
        returned_error = ValueError("legitimate result")

        def execute(payload):
            if payload == "boom":
                raise RuntimeError("worker crash")
            return returned_error

        work = WorkQueue()
        ok_id = work.put("fine")
        bad_id = work.put("boom")
        results = run_workers(work, lambda: execute, nworkers=2)

        assert results[ok_id] is returned_error  # not wrapped
        failure = results[bad_id]
        assert isinstance(failure, TaskFailure)
        assert failure.task_id == bad_id
        assert isinstance(failure.error, RuntimeError)

    def test_failure_does_not_strand_queue(self):
        def factory():
            def execute(payload):
                if payload % 2:
                    raise RuntimeError("odd payloads crash")
                return payload

            return execute

        work = WorkQueue()
        for i in range(8):
            work.put(i)
        results = run_workers(work, factory, nworkers=3)
        assert len(results) == 8
        assert sum(isinstance(r, TaskFailure) for r in results.values()) == 4


class TestWorkerFaultTolerance:
    def test_task_retry_recovers_transient_failure(self):
        attempts = {}

        def factory():
            def execute(payload):
                attempts[payload] = attempts.get(payload, 0) + 1
                if attempts[payload] == 1:
                    raise RuntimeError("transient")
                return payload * 10

            return execute

        work = WorkQueue()
        for i in range(4):
            work.put(i)
        results = run_workers(work, factory, nworkers=2, max_task_retries=1)
        assert results == {i: i * 10 for i in range(4)}
        assert sum(s.retries for s in work.worker_stats) == 4
        assert all(not s.failed for s in work.worker_stats)

    def test_retry_budget_exhausted_records_attempts(self):
        def factory():
            def execute(payload):
                raise RuntimeError("deterministic crash")

            return execute

        work = WorkQueue()
        work.put("x")
        results = run_workers(work, factory, nworkers=1, max_task_retries=2)
        failure = results[0]
        assert isinstance(failure, TaskFailure)
        assert failure.attempts == 3  # 1 initial + 2 retries
        assert sum(s.retries for s in work.worker_stats) == 2

    def test_base_exception_respawns_worker_and_retries(self):
        class WorkerDeath(BaseException):
            """Not an Exception: kills the worker, not just the task."""

        built = []
        state = {"killed": False}

        def factory():
            built.append(1)

            def execute(payload):
                if payload == "bomb" and not state["killed"]:
                    state["killed"] = True
                    raise WorkerDeath()
                return payload

            return execute

        work = WorkQueue()
        work.put("ok")
        work.put("bomb")
        results = run_workers(
            work, factory, nworkers=1, max_task_retries=1, max_worker_respawns=2
        )
        assert results == {0: "ok", 1: "bomb"}  # retried on the respawn
        assert len(built) == 2  # original boot + one respawn
        stats = work.worker_stats[0]
        assert stats.respawns == 1
        assert stats.retries == 1
        assert not stats.failed

    def test_all_factories_crash_drains_every_task(self):
        def factory():
            raise RuntimeError("kernel boot failed")

        work = WorkQueue()
        for i in range(6):
            work.put(i)
        results = run_workers(work, factory, nworkers=3, max_worker_respawns=1)
        assert len(results) == 6  # no missing keys, no hang
        for i in range(6):
            failure = results[i]
            assert isinstance(failure, TaskFailure)
            assert failure.attempts == 0  # never ran
            assert "worker pool exhausted" in str(failure.error)
        assert all(s.failed for s in work.worker_stats)
        assert all(s.respawns == 2 for s in work.worker_stats)  # 1 + 1 respawn

    def test_worker_stats_count_tasks_done(self):
        work = WorkQueue()
        for i in range(10):
            work.put(i)
        run_workers(work, lambda: (lambda x: x), nworkers=3)
        assert sum(s.tasks_done for s in work.worker_stats) == 10
        assert sum(s.retries for s in work.worker_stats) == 0
        assert sum(s.respawns for s in work.worker_stats) == 0


class TestCampaignResult:
    def _result_with_console(self, line):
        result = ExecutionResult()
        result.console = [line]
        return result

    def test_deduplicates_across_trials(self):
        campaign = CampaignResult(strategy="t")
        obs = observe(self._result_with_console("EXT4-fs error: x: checksum invalid"))
        first = campaign.record_observations(obs, test_index=0, trial=0)
        second = campaign.record_observations(obs, test_index=1, trial=0)
        assert len(first) == 1
        assert second == []

    def test_bug_matching_and_first_find(self):
        campaign = CampaignResult(strategy="t")
        line = (
            "EXT4-fs error (device sda): swap_inode_boot_loader:1: "
            "comm test: checksum invalid"
        )
        campaign.record_observations(
            observe(self._result_with_console(line)), test_index=7, trial=3
        )
        assert campaign.bugs_found() == {"SB02": 7}
        assert campaign.distinct_bugs == 1

    def test_accuracy(self):
        campaign = CampaignResult(strategy="t")
        campaign.tested_pmcs = 10
        campaign.exercised_pmcs = 3
        assert campaign.accuracy == pytest.approx(0.3)

    def test_accuracy_empty(self):
        assert CampaignResult(strategy="t").accuracy == 0.0

    def test_table_row_and_summary(self):
        campaign = CampaignResult(strategy="S-CH", exemplar_pmcs=5)
        campaign.tested_pmcs = 3
        row = campaign.table_row()
        assert "S-CH" in row and "5" in row and "3" in row
        summary = campaign.summary()
        assert summary["strategy"] == "S-CH"
        assert summary["bugs"] == {}


class TestObservationSerialisation:
    def _roundtrip(self, obs):
        import json

        from repro.detect.report import observation_from_obj, observation_to_obj
        from repro.orchestrate.results import (
            ObservationRecord,
            record_from_obj,
            record_to_obj,
        )

        obj = observation_to_obj(obs)
        assert json.loads(json.dumps(obj)) == obj  # JSON-safe
        restored = observation_from_obj(obj)
        assert restored == obs
        assert restored.key == obs.key
        record = ObservationRecord(observation=obs, test_index=3, trial=2)
        back = record_from_obj(record_to_obj(record))
        assert back.observation == obs
        assert back.test_index == 3 and back.trial == 2

    def test_race_observation_roundtrip(self):
        from repro.detect.datarace import RaceReport
        from repro.detect.report import BugObservation

        race = RaceReport(
            ins_a="net.py:ioctl_set_mac:3",
            ins_b="net.py:ioctl_get_mac:1",
            type_a="write",
            type_b="read",
            addr=0x1000,
            size=8,
            value_a=0xAB,
            value_b=0xCD,
            thread_a=0,
            thread_b=1,
        )
        self._roundtrip(BugObservation(kind="race", race=race))

    def test_console_observation_roundtrip(self):
        from repro.detect.console import ConsoleFinding
        from repro.detect.report import BugObservation

        finding = ConsoleFinding(kind="panic", line="BUG: NULL deref at rht_ptr")
        self._roundtrip(BugObservation(kind="console", console=finding))

    def test_deadlock_observation_roundtrip(self):
        from repro.detect.report import BugObservation

        self._roundtrip(BugObservation(kind="deadlock", detail="all threads stuck"))


@pytest.fixture(scope="module")
def small_snowboard():
    config = SnowboardConfig(
        seed=7, corpus_budget=120, trials_per_pmc=8, max_instructions=40_000
    )
    return Snowboard(config).prepare()


class TestPipeline:
    def test_prepare_builds_all_stages(self, small_snowboard):
        sb = small_snowboard
        assert len(sb.corpus) > 10
        assert len(sb.profiles) == len(sb.corpus)
        assert len(sb.pmcset) > 100

    def test_prepare_is_idempotent(self, small_snowboard):
        pmcs_before = len(small_snowboard.pmcset)
        small_snowboard.prepare()
        assert len(small_snowboard.pmcset) == pmcs_before

    def test_generate_tests_all_strategies(self, small_snowboard):
        for name in ("S-FULL", "S-CH", "S-INS", "S-INS-PAIR", "S-MEM"):
            tests, nclusters = small_snowboard.generate_tests(name, limit=10)
            assert nclusters > 0
            assert 0 < len(tests) <= 10
            for test in tests:
                assert test.pmc is not None

    def test_generate_random_pairing_baseline(self, small_snowboard):
        tests, nclusters = small_snowboard.generate_tests(RANDOM_PAIRING, limit=20)
        assert nclusters == 0
        assert len(tests) == 20
        assert all(t.pmc is None for t in tests)

    def test_generate_duplicate_pairing_is_duplicate(self, small_snowboard):
        tests, _ = small_snowboard.generate_tests(DUPLICATE_PAIRING, limit=20)
        assert all(t.duplicate for t in tests)

    def test_random_s_ins_pair_same_clusters_other_order(self, small_snowboard):
        ordered, n1 = small_snowboard.generate_tests("S-INS-PAIR")
        shuffled, n2 = small_snowboard.generate_tests(RANDOM_S_INS_PAIR)
        assert n1 == n2
        assert len(ordered) == len(shuffled)

    def test_campaign_records_metrics(self, small_snowboard):
        campaign = small_snowboard.run_campaign("S-INS-PAIR", test_budget=10)
        assert campaign.tested_pmcs == 10
        assert campaign.trials >= 10
        assert campaign.instructions > 0
        assert 0 <= campaign.exercised_pmcs <= campaign.tested_pmcs

    def test_campaign_determinism(self):
        config = SnowboardConfig(seed=3, corpus_budget=60, trials_per_pmc=4)
        a = Snowboard(config).prepare().run_campaign("S-INS", test_budget=5)
        b = Snowboard(config).prepare().run_campaign("S-INS", test_budget=5)
        assert a.summary() == b.summary()

    def test_uncommon_first_means_smallest_clusters_lead(self, small_snowboard):
        from repro.pmc.clustering import STRATEGIES_BY_NAME
        from repro.pmc.selection import cluster_pmcs

        tests, _ = small_snowboard.generate_tests("S-INS-PAIR", limit=50)
        strategy = STRATEGIES_BY_NAME["S-INS-PAIR"]
        clusters = cluster_pmcs(small_snowboard.pmcset.all_pmcs(), strategy)
        sizes_by_key = {key: len(v) for key, v in clusters.items()}

        def size_of(test):
            (key,) = strategy.cluster_keys(test.pmc)
            return sizes_by_key[key]

        sizes = [size_of(t) for t in tests]
        assert sizes == sorted(sizes)
