"""Tests for >2-thread execution (the section 6 extension).

The executor generalises to N serialised vCPUs; the race detector takes
``nthreads``.  These tests exercise three concurrent test processes —
including a three-way version of the l2tp order violation where a third
process widens the vulnerable window.
"""

import pytest

from repro.detect.datarace import RaceDetector
from repro.fuzz.prog import Call, Res, prog
from repro.kernel.kernel import boot_kernel
from repro.sched.executor import Executor
from repro.sched.random_sched import RandomScheduler


@pytest.fixture(scope="module")
def booted3():
    kernel, snapshot = boot_kernel()
    return kernel, Executor(kernel, snapshot)


class TestThreeThreadExecution:
    def test_three_programs_complete(self, booted3):
        _, ex = booted3
        a = prog(Call("msgget", (1,)))
        b = prog(Call("open", (1,)), Call("read", (Res(0), 1)))
        c = prog(Call("snd_ctl_add", (10,)))
        result = ex.run_concurrent([a, b, c], scheduler=RandomScheduler(seed=1))
        assert result.completed
        assert result.returns[0] == [1]
        assert result.returns[1] == [0, 0x1001]
        assert result.returns[2] == [10]

    def test_three_processes_have_private_fd_tables(self, booted3):
        _, ex = booted3
        a = prog(Call("open", (1,)))
        result = ex.run_concurrent([a, a, a], scheduler=RandomScheduler(seed=2))
        assert [r[0] for r in result.returns] == [0, 0, 0]

    def test_too_many_programs_rejected(self, booted3):
        _, ex = booted3
        a = prog(Call("open", (1,)))
        with pytest.raises(ValueError):
            ex.run_concurrent([a, a, a, a])

    def test_round_robin_rotation(self, booted3):
        _, ex = booted3
        a = prog(Call("msgget", (1,)), Call("msgsnd", (1, 2)))
        result = ex.run_concurrent(
            [a, a, a], scheduler=RandomScheduler(seed=3, switch_probability=1.0)
        )
        assert result.completed
        threads_seen = {acc.thread for acc in result.accesses}
        assert threads_seen == {0, 1, 2}

    def test_race_detector_with_three_threads(self, booted3):
        _, ex = booted3
        test = prog(Call("snd_ctl_add", (100,)))
        found = False
        for seed in range(40):
            scheduler = RandomScheduler(seed=seed, switch_probability=0.4)
            scheduler.begin_trial(0)
            detector = RaceDetector(nthreads=3)
            ex.run_concurrent(
                [test, test, test], scheduler=scheduler, race_detector=detector
            )
            if any(r.involves("snd_ctl_add") for r in detector.reports()):
                found = True
                break
        assert found

    def test_three_way_l2tp_denial_of_service(self, booted3):
        """The paper's DoS observation: many processes requesting the same
        tunnel id make one register and the rest fetch the uninitialised
        tunnel — with three threads the panic window is wider."""
        _, ex = booted3
        connector = prog(Call("socket", (2,)), Call("connect", (Res(0), 1)))
        sender = prog(
            Call("socket", (2,)),
            Call("connect", (Res(0), 1)),
            Call("sendmsg", (Res(0), 5)),
        )
        panicked = False
        for seed in range(60):
            scheduler = RandomScheduler(seed=seed, switch_probability=0.4)
            scheduler.begin_trial(0)
            result = ex.run_concurrent([connector, sender, sender], scheduler=scheduler)
            if result.panicked and "pppol2tp_sendmsg" in result.panic_message:
                panicked = True
                break
        assert panicked

    def test_replay_with_three_threads(self, booted3):
        _, ex = booted3
        a = prog(Call("msgget", (2,)), Call("msgctl", (2, 0)))
        b = prog(Call("msgget", (2,)))
        c = prog(Call("msgsnd", (2, 9)))
        original = ex.run_concurrent(
            [a, b, c], scheduler=RandomScheduler(seed=11, switch_probability=0.3)
        )
        replayed = ex.run_concurrent(
            [a, b, c], replay_switch_points=original.switch_points
        )
        assert replayed.returns == original.returns
        assert [x.thread for x in replayed.accesses] == [
            x.thread for x in original.accesses
        ]
