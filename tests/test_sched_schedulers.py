"""Tests for the exploration schedulers: Snowboard, SKI, PCT, random."""


from repro.machine.accesses import AccessType, MemoryAccess
from repro.pmc.model import PMC, AccessKey
from repro.sched.executor import ExecutionResult
from repro.sched.liveness import LivenessMonitor
from repro.sched.random_sched import RandomScheduler
from repro.sched.ski import PctScheduler, SkiScheduler
from repro.sched.snowboard import SnowboardScheduler, access_sig, channel_exercised, pmc_sigs

_SEQ = [0]


def mem(thread, type, addr, size=8, value=0, ins="m.py:f:1", stack=False):
    _SEQ[0] += 1
    return MemoryAccess(
        seq=_SEQ[0],
        thread=thread,
        type=AccessType.READ if type == "R" else AccessType.WRITE,
        addr=addr,
        size=size,
        value=value,
        ins=ins,
        is_stack=stack,
    )


THE_PMC = PMC(
    write=AccessKey(addr=0x100, size=8, ins="k.py:w:10", value=7),
    read=AccessKey(addr=0x100, size=8, ins="k.py:r:20", value=0),
)


class TestSnowboardScheduler:
    def test_pmc_access_may_switch(self):
        sched = SnowboardScheduler(THE_PMC, seed=0, switch_probability=1.0)
        sched.begin_trial(0)
        assert sched.on_access(mem(0, "W", 0x100, ins="k.py:w:10")) is True

    def test_value_is_not_part_of_runtime_matching(self):
        """A PMC access matches by (type, ins, range): the runtime value
        may differ from the profiled one (that is the channel firing)."""
        sched = SnowboardScheduler(THE_PMC, seed=0, switch_probability=1.0)
        sched.begin_trial(0)
        assert sched.on_access(mem(1, "R", 0x100, value=999, ins="k.py:r:20"))

    def test_unrelated_access_never_switches(self):
        sched = SnowboardScheduler(THE_PMC, seed=0, switch_probability=1.0)
        sched.begin_trial(0)
        assert not sched.on_access(mem(0, "W", 0x200, ins="k.py:other:5"))

    def test_same_instruction_different_address_does_not_match(self):
        """Section 5.4: Snowboard only reschedules on the *precise* access."""
        sched = SnowboardScheduler(THE_PMC, seed=0, switch_probability=1.0)
        sched.begin_trial(0)
        assert not sched.on_access(mem(0, "W", 0x900, ins="k.py:w:10"))

    def test_flag_learning_enables_pmc_access_coming(self):
        sched = SnowboardScheduler(THE_PMC, seed=0, switch_probability=1.0)
        sched.begin_trial(0)
        prelude = mem(0, "R", 0x555, ins="k.py:pre:9")
        sched.on_access(prelude)  # remembered as last access
        sched.on_access(mem(0, "W", 0x100, ins="k.py:w:10"))  # PMC: learn flag
        assert access_sig(prelude) in sched.flags
        # In a later trial the prelude access itself now triggers a switch.
        sched.begin_trial(1)
        assert sched.on_access(mem(0, "R", 0x555, ins="k.py:pre:9")) is True

    def test_trial_reseeding_is_reproducible(self):
        a = SnowboardScheduler(THE_PMC, seed=42, switch_probability=0.5)
        b = SnowboardScheduler(THE_PMC, seed=42, switch_probability=0.5)
        for trial in (0, 1, 2):
            a.begin_trial(trial)
            b.begin_trial(trial)
            stream = [mem(0, "W", 0x100, ins="k.py:w:10") for _ in range(10)]
            assert [a.on_access(x) for x in stream] == [b.on_access(x) for x in stream]

    def test_incidental_adoption_capped(self):
        other_pmcs = [
            PMC(
                write=AccessKey(addr=0x200 + i * 8, size=8, ins=f"k.py:w:{i}", value=1),
                read=AccessKey(addr=0x200 + i * 8, size=8, ins=f"k.py:rr:{i}", value=0),
            )
            for i in range(10)
        ]
        sched = SnowboardScheduler(THE_PMC, seed=0, universe=other_pmcs, max_adopted=2)
        for i in range(10):
            result = ExecutionResult()
            result.accesses = [
                mem(0, "W", 0x200 + i * 8, ins=f"k.py:w:{i}"),
                mem(1, "R", 0x200 + i * 8, ins=f"k.py:rr:{i}"),
            ]
            sched.end_trial(result)
        assert sched.tracked_pmcs <= 1 + 2  # the target + the cap

    def test_adoption_requires_both_sides_observed(self):
        other = PMC(
            write=AccessKey(addr=0x300, size=8, ins="k.py:w:99", value=1),
            read=AccessKey(addr=0x300, size=8, ins="k.py:rr:99", value=0),
        )
        sched = SnowboardScheduler(THE_PMC, seed=0, universe=[other])
        result = ExecutionResult()
        result.accesses = [mem(0, "W", 0x300, ins="k.py:w:99")]  # write only
        sched.end_trial(result)
        assert sched.tracked_pmcs == 1

    def test_pmc_sigs(self):
        write_sig, read_sig = pmc_sigs(THE_PMC)
        assert write_sig == (AccessType.WRITE, "k.py:w:10", 0x100, 8)
        assert read_sig == (AccessType.READ, "k.py:r:20", 0x100, 8)


class TestChannelExercised:
    def test_write_then_cross_thread_read_of_value(self):
        accesses = [
            mem(0, "W", 0x100, value=7, ins="k.py:w:10"),
            mem(1, "R", 0x100, value=7, ins="k.py:r:20"),
        ]
        assert channel_exercised(THE_PMC, accesses)

    def test_read_before_write_does_not_count(self):
        accesses = [
            mem(1, "R", 0x100, value=7, ins="k.py:r:20"),
            mem(0, "W", 0x100, value=7, ins="k.py:w:10"),
        ]
        assert not channel_exercised(THE_PMC, accesses)

    def test_read_of_different_value_does_not_count(self):
        accesses = [
            mem(0, "W", 0x100, value=7, ins="k.py:w:10"),
            mem(1, "R", 0x100, value=3, ins="k.py:r:20"),
        ]
        assert not channel_exercised(THE_PMC, accesses)

    def test_same_thread_flow_does_not_count(self):
        accesses = [
            mem(0, "W", 0x100, value=7, ins="k.py:w:10"),
            mem(0, "R", 0x100, value=7, ins="k.py:r:20"),
        ]
        assert not channel_exercised(THE_PMC, accesses)


class TestSkiScheduler:
    def test_switches_on_pmc_instruction_any_address(self):
        sched = SkiScheduler(THE_PMC, seed=0, switch_probability=1.0)
        sched.begin_trial(0)
        # Same instruction, unrelated address: SKI still yields.
        assert sched.on_access(mem(0, "W", 0x9999, ins="k.py:w:10")) is True

    def test_ignores_other_instructions(self):
        sched = SkiScheduler(THE_PMC, seed=0, switch_probability=1.0)
        sched.begin_trial(0)
        assert not sched.on_access(mem(0, "W", 0x100, ins="k.py:zzz:1"))

    def test_reseeding(self):
        a = SkiScheduler(THE_PMC, seed=9)
        b = SkiScheduler(THE_PMC, seed=9)
        a.begin_trial(3)
        b.begin_trial(3)
        stream = [mem(0, "W", 0x1, ins="k.py:w:10") for _ in range(20)]
        assert [a.on_access(x) for x in stream] == [b.on_access(x) for x in stream]


class TestPctScheduler:
    def test_runs_priority_order(self):
        sched = PctScheduler(seed=1, depth=1)  # no change points
        sched.begin_trial(0)
        hi = 0 if sched.priorities[0] > sched.priorities[1] else 1
        assert sched.on_access(mem(hi, "R", 0x1)) is False
        assert sched.on_access(mem(1 - hi, "R", 0x1)) is True

    def test_change_points_demote(self):
        sched = PctScheduler(seed=1, depth=3, expected_length=10)
        sched.begin_trial(0)
        decisions = [sched.on_access(mem(0, "R", 0x1)) for _ in range(30)]
        assert True in decisions  # eventually thread 0 gets demoted

    def test_deterministic_per_trial(self):
        a = PctScheduler(seed=7, depth=3, expected_length=50)
        b = PctScheduler(seed=7, depth=3, expected_length=50)
        a.begin_trial(2)
        b.begin_trial(2)
        assert a.priorities == b.priorities
        assert a.change_points == b.change_points


class TestRandomScheduler:
    def test_probability_zero_never_switches(self):
        sched = RandomScheduler(seed=0, switch_probability=0.0)
        sched.begin_trial(0)
        assert not any(sched.on_access(mem(0, "R", 0x1)) for _ in range(50))

    def test_probability_one_always_switches(self):
        sched = RandomScheduler(seed=0, switch_probability=1.0)
        sched.begin_trial(0)
        assert all(sched.on_access(mem(0, "R", 0x1)) for _ in range(50))


class TestLivenessMonitor:
    def test_varied_accesses_are_live(self):
        monitor = LivenessMonitor(2)
        for i in range(20):
            monitor.note_access(0, "i", 0x100 + i)
        assert not monitor.is_stuck(0)

    def test_same_address_spin_is_stuck(self):
        monitor = LivenessMonitor(2)
        for _ in range(10):
            monitor.note_access(0, "i", 0x100)
        assert monitor.is_stuck(0)

    def test_pause_storm_is_stuck(self):
        monitor = LivenessMonitor(2)
        for _ in range(10):
            monitor.note_pause(1)
        assert monitor.is_stuck(1)

    def test_partial_window_is_live(self):
        monitor = LivenessMonitor(2)
        for _ in range(5):
            monitor.note_access(0, "i", 0x100)
        assert not monitor.is_stuck(0)

    def test_progress_clears(self):
        monitor = LivenessMonitor(2)
        for _ in range(10):
            monitor.note_access(0, "i", 0x100)
        monitor.note_progress(0)
        assert not monitor.is_stuck(0)

    def test_reset_all(self):
        monitor = LivenessMonitor(2)
        for t in (0, 1):
            for _ in range(10):
                monitor.note_pause(t)
        monitor.reset()
        assert not monitor.is_stuck(0) and not monitor.is_stuck(1)
