"""Tests for the block device layer and its reader-side interactions."""

import pytest

from repro.fuzz.prog import Call, Res, prog
from repro.kernel.errors import EIO
from repro.kernel.kernel import boot_kernel
from repro.kernel.subsystems.blockdev import BDEV, VALID_BLOCKSIZES
from repro.sched.executor import Executor


@pytest.fixture()
def booted_bdev():
    kernel, snapshot = boot_kernel()
    return kernel, Executor(kernel, snapshot)


class TestIoctls:
    def test_set_blocksize_selects_valid_size(self, booted_bdev):
        kernel, executor = booted_bdev
        result = executor.run_sequential(
            prog(Call("open", (1,)), Call("ioctl", (Res(0), 2, 1)))
        )
        assert result.returns[0][1] == 0
        bdev = kernel.subsystems["blockdev"].bdev
        bs = kernel.machine.memory.read_int(BDEV.addr(bdev, "blocksize"), 8)
        assert bs == VALID_BLOCKSIZES[1]

    def test_blkraset_updates_readahead(self, booted_bdev):
        kernel, executor = booted_bdev
        result = executor.run_sequential(
            prog(Call("open", (1,)), Call("ioctl", (Res(0), 3, 64)), Call("fadvise", (Res(0),)))
        )
        assert result.returns[0][1] == 0
        assert result.returns[0][2] == 64

    def test_read_after_set_blocksize_is_clean_sequentially(self, booted_bdev):
        _, executor = booted_bdev
        result = executor.run_sequential(
            prog(Call("open", (1,)), Call("ioctl", (Res(0), 2, 0)), Call("read", (Res(0), 2)))
        )
        assert result.returns[0][2] > 0
        assert result.console == []


class TestBlocksizeAV:
    """Bug #4 analogue: a reader observing the transient 0 fails the I/O."""

    def test_reader_sees_zero_blocksize_and_errors(self, booted_bdev):
        kernel, executor = booted_bdev
        bdev = kernel.subsystems["blockdev"].bdev
        bs_addr = BDEV.addr(bdev, "blocksize")
        writer = prog(Call("open", (1,)), Call("ioctl", (Res(0), 2, 1)))
        reader = prog(Call("open", (2,)), Call("read", (Res(0), 2)))

        class ForceZeroWindow:
            def __init__(self):
                self.switched = False

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                # Right after the writer invalidates the blocksize.
                if (
                    access.thread == 0
                    and not self.switched
                    and access.is_write
                    and access.addr == bs_addr
                    and access.value == 0
                ):
                    self.switched = True
                    return True
                return False

        result = executor.run_concurrent([writer, reader], scheduler=ForceZeroWindow())
        assert result.returns[1][1] == EIO
        assert any("I/O error" in line for line in result.console)

    def test_mid_read_size_change_also_errors(self, booted_bdev):
        """Second shape of #4: two different sizes across one request."""
        kernel, executor = booted_bdev
        bdev = kernel.subsystems["blockdev"].bdev
        bs_addr = BDEV.addr(bdev, "blocksize")
        writer = prog(Call("open", (1,)), Call("ioctl", (Res(0), 2, 1)))
        reader = prog(Call("open", (2,)), Call("read", (Res(0), 2)))

        class ForceMidRead:
            """Let the reader sample once, run the whole writer, resume."""

            def __init__(self):
                self.phase = 0

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                if (
                    access.thread == 1
                    and self.phase == 0
                    and access.is_read
                    and access.addr == bs_addr
                ):
                    self.phase = 1  # reader sampled block 1's size; switch
                    return True
                return False

        # Thread 1 (reader) must start first so its first sample precedes
        # the writer's update; thread 0 runs when the reader yields.
        class ReaderFirst(ForceMidRead):
            def on_access(self, access):
                if self.phase == 0 and access.thread == 0:
                    return True  # bounce the writer until the reader sampled
                return super().on_access(access)

        result = executor.run_concurrent([writer, reader], scheduler=ReaderFirst())
        assert result.returns[1][1] == EIO
        assert any("I/O error" in line for line in result.console)
