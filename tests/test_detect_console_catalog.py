"""Tests for the console checker, observations, and the bug catalog."""

import pytest

from repro.detect.catalog import BUG_CATALOG, catalog_ids, match_observations, spec_by_id
from repro.detect.console import ConsoleChecker, ConsoleFinding
from repro.detect.datarace import RaceReport
from repro.detect.report import BugObservation, Triage, observe
from repro.sched.executor import ExecutionResult


def race_obs(ins_a, ins_b, type_a="W", type_b="R", addr=0x100):
    report = RaceReport(
        ins_a=ins_a,
        ins_b=ins_b,
        type_a=type_a,
        type_b=type_b,
        addr=addr,
        size=8,
        value_a=0,
        value_b=1,
        thread_a=0,
        thread_b=1,
    )
    return BugObservation(kind="race", race=report)


def console_obs(line):
    checker = ConsoleChecker()
    (finding,) = checker.scan([line])
    return BugObservation(kind="console", console=finding)


class TestConsoleChecker:
    def test_detects_null_deref(self):
        checker = ConsoleChecker()
        findings = checker.scan(["BUG: kernel NULL pointer dereference, address: 0x0"])
        assert [f.kind for f in findings] == ["null-deref"]

    def test_detects_ext4_error(self):
        checker = ConsoleChecker()
        findings = checker.scan(["EXT4-fs error (device sda): x: checksum invalid"])
        assert findings[0].kind == "ext4-error"

    def test_clean_console_yields_nothing(self):
        assert ConsoleChecker().scan(["mini-kernel booted", "hello"]) == []

    def test_key_normalises_addresses(self):
        a = ConsoleFinding("null-deref", "BUG at 0xdeadbeef now")
        b = ConsoleFinding("null-deref", "BUG at 0xcafebabe now")
        assert a.key == b.key

    def test_first_pattern_wins(self):
        line = "BUG: kernel NULL pointer dereference then Kernel panic"
        (finding,) = ConsoleChecker().scan([line])
        assert finding.kind == "null-deref"


class TestObserve:
    def test_collects_races_console_and_deadlock(self):
        result = ExecutionResult()
        result.console = ["EXT4-fs error: boom"]
        result.deadlocked = True
        result.races = [race_obs("a.py:x:1", "a.py:y:2").race]
        observations = observe(result)
        kinds = sorted(o.kind for o in observations)
        assert kinds == ["console", "deadlock", "race"]

    def test_clean_result_yields_nothing(self):
        assert observe(ExecutionResult()) == []

    def test_observation_keys_dedup(self):
        a = race_obs("a.py:x:1", "a.py:y:2")
        b = race_obs("a.py:y:2", "a.py:x:1", type_a="R", type_b="W")
        assert a.key == b.key


class TestCatalog:
    def test_catalog_has_17_rows_like_table2(self):
        assert len(BUG_CATALOG) == 17
        assert len(catalog_ids()) == 17

    def test_paper_ids_cover_1_to_17(self):
        assert sorted(s.paper_id for s in BUG_CATALOG) == list(range(1, 18))

    def test_bug_types_match_table2(self):
        by_type = {}
        for spec in BUG_CATALOG:
            by_type.setdefault(spec.bug_type, []).append(spec.paper_id)
        assert sorted(by_type["AV"]) == [2, 3, 4]
        assert by_type["OV"] == [12]
        assert len(by_type["DR"]) == 13

    def test_benign_triage_matches_table2(self):
        benign = {s.paper_id for s in BUG_CATALOG if s.triage is Triage.BENIGN}
        assert benign == {10, 13, 16}

    def test_mac_race_matches_sb09(self):
        obs = race_obs(
            "net.py:NetSubsystem.ioctl_set_mac:260", "net.py:NetSubsystem.ioctl_get_mac:270"
        )
        assert match_observations([obs]) == {"SB09": [obs]}

    def test_getname_race_matches_sb08(self):
        obs = race_obs(
            "net.py:NetSubsystem.ioctl_set_mac:260", "net.py:NetSubsystem.sys_getsockname:277"
        )
        grouped = match_observations([obs])
        assert list(grouped) == ["SB08"]

    def test_l2tp_panic_matches_sb12(self):
        obs = console_obs(
            "BUG: kernel NULL pointer dereference, address: 0x0 "
            "RIP: l2tp.py:L2tpSubsystem.pppol2tp_sendmsg:127"
        )
        assert list(match_observations([obs])) == ["SB12"]

    def test_rhashtable_panic_matches_sb01(self):
        obs = console_obs(
            "BUG: kernel NULL pointer dereference, address: 0x8 "
            "RIP: rhashtable.py:rht_lookup:81"
        )
        assert list(match_observations([obs])) == ["SB01"]

    def test_configfs_panic_matches_sb11(self):
        obs = console_obs(
            "BUG: kernel NULL pointer dereference, address: 0x8 "
            "RIP: fs.py:FsSubsystem.sys_lookup:316"
        )
        assert list(match_observations([obs])) == ["SB11"]

    def test_checksum_error_matches_sb02(self):
        obs = console_obs(
            "EXT4-fs error (device sda): swap_inode_boot_loader:1: comm test: checksum invalid"
        )
        assert list(match_observations([obs])) == ["SB02"]

    def test_alloc_stats_race_matches_sb13(self):
        obs = race_obs("alloc.py:Allocator.kmalloc:92", "alloc.py:Allocator.kfree:120")
        assert list(match_observations([obs])) == ["SB13"]

    def test_unknown_race_goes_unmatched(self):
        obs = race_obs("zzz.py:a:1", "zzz.py:b:2")
        assert list(match_observations([obs])) == ["unmatched"]

    def test_spec_by_id(self):
        assert spec_by_id("SB12").bug_type == "OV"
        with pytest.raises(KeyError):
            spec_by_id("SB99")

    def test_fanout_race_matches_sb17_not_sb16(self):
        obs = race_obs(
            "net.py:NetSubsystem.fanout_unlink:340",
            "net.py:NetSubsystem.fanout_demux_rollover:356",
        )
        assert list(match_observations([obs])) == ["SB17"]

    def test_fib6_race_matches_sb10_not_sb07(self):
        obs = race_obs(
            "net.py:NetSubsystem.sys_route_update:380",
            "net.py:NetSubsystem.rawv6_send_hdrinc:230",
        )
        assert list(match_observations([obs])) == ["SB10"]
