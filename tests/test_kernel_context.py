"""Unit tests for KernelContext: ops, instruction capture, stack, bulk copies."""

import pytest

from repro.kernel.context import _chunk_size
from repro.kernel.ops import CasOp, MemOp, PanicOp
from repro.machine.accesses import AccessType


@pytest.fixture()
def ctx(kernel):
    return kernel.make_context(0)


def drain(gen, sends=None):
    """Run a kernel-code generator, feeding canned responses; returns ops."""
    sends = list(sends or [])
    ops = []
    try:
        op = next(gen)
        while True:
            ops.append(op)
            value = sends.pop(0) if sends else 0
            op = gen.send(value)
    except StopIteration:
        return ops


class TestInstructionCapture:
    def test_ins_names_calling_function_and_line(self, kernel, ctx):
        def handler():
            yield from ctx.load(0x100, 4)

        op = next(handler())
        assert "test_kernel_context.py" in op.ins
        assert "handler" in op.ins

    def test_ins_is_stable_across_runs(self, ctx):
        def handler():
            yield from ctx.load(0x100, 4)

        assert next(handler()).ins == next(handler()).ins

    def test_two_loads_get_distinct_instructions(self, ctx):
        def handler():
            yield from ctx.load(0x100, 4)
            yield from ctx.load(0x100, 4)

        ops = drain(handler())
        assert ops[0].ins != ops[1].ins


class TestMemOps:
    def test_load_emits_read(self, ctx):
        def handler():
            value = yield from ctx.load(0x100, 4)
            return value

        op = next(handler())
        assert isinstance(op, MemOp)
        assert op.type is AccessType.READ
        assert (op.addr, op.size, op.value) == (0x100, 4, None)

    def test_store_emits_write(self, ctx):
        def handler():
            yield from ctx.store(0x200, 2, 0xBEEF)

        op = next(handler())
        assert op.type is AccessType.WRITE
        assert (op.addr, op.size, op.value) == (0x200, 2, 0xBEEF)

    def test_atomic_flag_propagates(self, ctx):
        def handler():
            yield from ctx.store_word(0x200, 1, atomic=True)

        assert next(handler()).atomic is True

    def test_cas_op(self, ctx):
        def handler():
            old = yield from ctx.cas(0x300, 4, 0, 7)
            return old

        op = next(handler())
        assert isinstance(op, CasOp)
        assert (op.expected, op.new) == (0, 7)

    def test_field_ops_compute_addresses(self, ctx):
        from repro.machine.layout import Struct, field

        S = Struct("s", field("a", 4), field("b", 8))

        def handler():
            yield from ctx.store_field(S, 0x1000, "b", 5)

        op = next(handler())
        assert op.addr == 0x1004
        assert op.size == 8


class TestBulkCopies:
    def test_memcpy_chunks_6_bytes_as_4_plus_2(self, ctx):
        def handler():
            yield from ctx.memcpy(0x200, 0x100, 6)

        ops = drain(handler())
        # read4, write4, read2, write2 — the torn-window shape
        assert [(o.type, o.size) for o in ops] == [
            (AccessType.READ, 4),
            (AccessType.WRITE, 4),
            (AccessType.READ, 2),
            (AccessType.WRITE, 2),
        ]
        assert all(o.ins == ops[0].ins for o in ops)  # one call site

    def test_memread_assembles_value(self, ctx):
        def handler():
            value = yield from ctx.memread(0x100, 6)
            return value

        gen = handler()
        next(gen)  # read 4 -> respond 0xDDCCBBAA
        gen.send(0xDDCCBBAA)  # read 2 -> respond 0xFFEE
        with pytest.raises(StopIteration) as stop:
            gen.send(0xFFEE)
        assert stop.value.value == 0xFFEE_DDCC_BBAA

    def test_memwrite_splits_value(self, ctx):
        def handler():
            yield from ctx.memwrite(0x100, 6, 0xFFEE_DDCC_BBAA)

        ops = drain(handler())
        assert ops[0].value == 0xDDCCBBAA
        assert ops[1].value == 0xFFEE

    def test_memset_fills(self, ctx):
        def handler():
            yield from ctx.memset(0x100, 0xAB, 3)

        ops = drain(handler())
        assert [(o.size, o.value) for o in ops] == [(2, 0xABAB), (1, 0xAB)]

    def test_chunk_size_table(self):
        assert [_chunk_size(n) for n in (1, 2, 3, 4, 7, 8, 9)] == [1, 2, 2, 4, 4, 8, 8]
        with pytest.raises(ValueError):
            _chunk_size(0)


class TestStack:
    def test_stack_alloc_is_word_aligned_and_in_range(self, kernel):
        ctx = kernel.make_context(1)
        addr = ctx.stack_alloc(3)
        addr2 = ctx.stack_alloc(8)
        assert addr2 == addr + 8
        assert kernel.machine.in_stack(1, addr, 8)

    def test_reset_stack_reclaims(self, kernel):
        ctx = kernel.make_context(0)
        first = ctx.stack_alloc(16)
        ctx.reset_stack()
        assert ctx.stack_alloc(16) == first

    def test_stack_overflow_raises(self, kernel):
        ctx = kernel.make_context(0)
        with pytest.raises(MemoryError):
            for _ in range(10_000):
                ctx.stack_alloc(1024)


class TestFailureHelpers:
    def test_bug_on_true_panics(self, ctx):
        ops = drain(ctx.bug_on(True, "boom"))
        assert isinstance(ops[0], PanicOp)

    def test_bug_on_false_is_noop(self, ctx):
        assert drain(ctx.bug_on(False, "boom")) == []

    def test_panic_carries_message(self, ctx):
        op = next(ctx.panic("die"))
        assert op.message == "die"
