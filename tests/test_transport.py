"""The fleet transport layer: protocol conformance, socket framing and
handshake, heartbeat liveness, and the lease/generation edge cases.

Everything campaign-shaped lives in ``test_fleet.py``; this file tests
the machinery underneath with scripted stub transports (deterministic
races the real fleets only hit under load) and real TCP sockets (the
handshake and framing paths of ``--fleet sockets``).
"""

from __future__ import annotations

import queue as stdqueue
import socket
from typing import List

import pytest

from repro.orchestrate.fleet import (
    WIRE_VERSION,
    FleetCoordinator,
    HeartbeatEnvelope,
    HelloEnvelope,
    ResultEnvelope,
    TaskEnvelope,
    WireFormatError,
    WorkerSpec,
)
from repro.orchestrate.socketfleet import (
    SocketTransport,
    config_from_obj,
    config_to_obj,
    connect_worker,
    recv_frame,
    result_envelope_from_obj,
    result_envelope_to_obj,
    send_frame,
    task_envelope_from_obj,
    task_envelope_to_obj,
    worker_spec_from_obj,
    worker_spec_to_obj,
)
from repro.orchestrate.transport import (
    MultiprocessingTransport,
    Transport,
    WorkerHandle,
)
from repro.orchestrate.pipeline import SnowboardConfig


def make_envelope(task_id: int) -> TaskEnvelope:
    """A syntactically valid envelope; stub workers never execute it."""
    return TaskEnvelope(
        task_id=task_id,
        writer=(),
        reader=(),
        writer_test=0,
        reader_test=1,
        trials=1,
    )


# -- scripted stub transport -------------------------------------------------------


class StubHandle:
    """A worker handle whose behaviour is a pair of callbacks."""

    def __init__(self, transport, worker_id, generation, on_task=None, on_kill=None):
        self.transport = transport
        self.worker_id = worker_id
        self.generation = generation
        self.on_task = on_task
        self.on_kill = on_kill
        self.killed = False
        self.stopped = False

    def emit(self, msg) -> None:
        self.transport.inbox.put(msg)

    def send(self, envelope: TaskEnvelope) -> None:
        if self.on_task is not None:
            self.on_task(self, envelope)

    def ready(self) -> bool:
        return True

    def stop(self) -> None:
        self.stopped = True

    def kill(self) -> None:
        if not self.killed and self.on_kill is not None:
            self.on_kill(self)
        self.killed = True

    def join(self, timeout: float = 5.0) -> None:
        pass


class StubTransport:
    """Spawns scripted handles: one ``(on_spawn, on_task, on_kill)``
    behaviour triple per spawn call, in order; the last repeats."""

    def __init__(self, behaviors: List[dict]):
        self.behaviors = list(behaviors)
        self.inbox: "stdqueue.Queue" = stdqueue.Queue()
        self.spawned: List[StubHandle] = []
        self.closed = False

    def spawn(self, worker_id: int, generation: int) -> StubHandle:
        behavior = self.behaviors.pop(0) if len(self.behaviors) > 1 else self.behaviors[0]
        handle = StubHandle(
            self,
            worker_id,
            generation,
            on_task=behavior.get("on_task"),
            on_kill=behavior.get("on_kill"),
        )
        self.spawned.append(handle)
        on_spawn = behavior.get("on_spawn")
        if on_spawn is not None:
            on_spawn(handle)
        return handle

    def recv(self, timeout: float):
        try:
            if timeout <= 0:
                return self.inbox.get_nowait()
            return self.inbox.get(timeout=timeout)
        except stdqueue.Empty:
            return None

    def close(self) -> None:
        self.closed = True


def make_coordinator(transport, **kwargs) -> FleetCoordinator:
    kwargs.setdefault("nworkers", 1)
    kwargs.setdefault("max_task_retries", 1)
    kwargs.setdefault("max_worker_respawns", 2)
    kwargs.setdefault("heartbeat_timeout", 0.3)
    kwargs.setdefault("boot_grace", 5.0)
    kwargs.setdefault("poll_interval", 0.01)
    return FleetCoordinator(transport, **kwargs)


class TestProtocolConformance:
    def test_stub_and_real_transports_satisfy_protocols(self):
        transport = StubTransport([{}])
        assert isinstance(transport, Transport)
        assert isinstance(transport.spawn(0, 1), WorkerHandle)
        mp_transport = MultiprocessingTransport(
            WorkerSpec(config=SnowboardConfig())
        )
        assert isinstance(mp_transport, Transport)
        mp_transport.close()

    def test_socket_transport_satisfies_protocol(self):
        transport = SocketTransport(
            WorkerSpec(config=SnowboardConfig()), spawn_workers=False
        )
        try:
            assert isinstance(transport, Transport)
            assert isinstance(transport.spawn(0, 1), WorkerHandle)
        finally:
            transport.close()


# -- coordinator liveness / generation edge cases ----------------------------------


class TestHeartbeatLiveness:
    def test_hello_from_future_build_rejected(self):
        """A worker advertising a higher WIRE_VERSION is rejected with
        WireFormatError before any of its envelopes is decoded
        (multiprocessing-shaped channel: the Hello *is* the handshake)."""
        transport = StubTransport(
            [
                {
                    "on_spawn": lambda h: h.emit(
                        HelloEnvelope(
                            h.worker_id, h.generation, version=WIRE_VERSION + 1
                        )
                    )
                }
            ]
        )
        coordinator = make_coordinator(transport)
        with pytest.raises(WireFormatError):
            coordinator.run([make_envelope(0)])
        assert transport.closed  # run() releases the transport on error too

    def test_missed_heartbeat_reclaims_and_respawns(self):
        """Generation 1 says hello, takes the task, then falls silent;
        the coordinator declares it dead at the heartbeat deadline and
        generation 2 completes the reclaimed task."""

        def gen2_task(handle, envelope):
            handle.emit(
                ResultEnvelope(
                    task_id=envelope.task_id,
                    worker_id=handle.worker_id,
                    status="ok",
                    generation=handle.generation,
                )
            )

        transport = StubTransport(
            [
                {"on_spawn": lambda h: h.emit(HelloEnvelope(h.worker_id, h.generation))},
                {
                    "on_spawn": lambda h: h.emit(
                        HelloEnvelope(h.worker_id, h.generation)
                    ),
                    "on_task": gen2_task,
                },
            ]
        )
        coordinator = make_coordinator(transport)
        results = coordinator.run([make_envelope(0)])
        assert results[0].generation == 2
        stats = coordinator.worker_stats[0]
        assert stats.heartbeats_missed == 1
        assert stats.respawns == 1
        assert stats.retries == 1
        assert stats.tasks_done == 1

    def test_stale_generation_result_discarded(self):
        """The reclaimed generation-1 worker lives long enough to report
        after generation 2 took over: its result must be dropped, and
        generation 2's accepted."""

        def gen2_task(handle, envelope):
            # The predecessor's late report lands first...
            handle.emit(
                ResultEnvelope(
                    task_id=envelope.task_id,
                    worker_id=handle.worker_id,
                    status="ok",
                    generation=1,
                    message="stale",
                )
            )
            # ...then the live generation's.
            handle.emit(
                ResultEnvelope(
                    task_id=envelope.task_id,
                    worker_id=handle.worker_id,
                    status="ok",
                    generation=handle.generation,
                    message="fresh",
                )
            )

        transport = StubTransport(
            [
                {"on_spawn": lambda h: h.emit(HelloEnvelope(h.worker_id, h.generation))},
                {
                    "on_spawn": lambda h: h.emit(
                        HelloEnvelope(h.worker_id, h.generation)
                    ),
                    "on_task": gen2_task,
                },
            ]
        )
        coordinator = make_coordinator(transport)
        results = coordinator.run([make_envelope(0)])
        assert results[0].message == "fresh"
        assert results[0].generation == 2
        assert coordinator.worker_stats[0].tasks_done == 1

    def test_queued_final_result_wins_and_charges_no_retry(self):
        """The satellite regression: a worker's final result and its
        death race.  The result is already on the channel when the
        coordinator reclaims — it must win, and the task must not be
        charged a retry (the respawn still is)."""

        def final_result_then_die(handle):
            # kill() fires at reclaim time; the result it emits models a
            # message that was in flight when the worker died.
            handle.emit(
                ResultEnvelope(
                    task_id=0,
                    worker_id=handle.worker_id,
                    status="ok",
                    generation=handle.generation,
                )
            )

        transport = StubTransport(
            [
                {
                    "on_spawn": lambda h: h.emit(
                        HelloEnvelope(h.worker_id, h.generation)
                    ),
                    "on_kill": final_result_then_die,
                },
                {"on_spawn": lambda h: h.emit(HelloEnvelope(h.worker_id, h.generation))},
            ]
        )
        coordinator = make_coordinator(transport)
        results = coordinator.run([make_envelope(0)])
        assert results[0].status == "ok"
        stats = coordinator.worker_stats[0]
        assert stats.retries == 0  # the queued result won the race
        assert stats.respawns == 1  # the death itself is still a death
        assert stats.tasks_done == 1

    def test_wedged_but_beating_worker_reclaimed_by_lease(self):
        """Heartbeats alone must not keep a lease alive: a worker that
        beats forever but never answers is reclaimed at the lease
        deadline, not trusted indefinitely."""

        def keep_beating(handle, envelope):
            handle.emit(HeartbeatEnvelope(handle.worker_id, handle.generation))

        def gen2_task(handle, envelope):
            handle.emit(
                ResultEnvelope(
                    task_id=envelope.task_id,
                    worker_id=handle.worker_id,
                    status="ok",
                    generation=handle.generation,
                )
            )

        transport = StubTransport(
            [
                {
                    "on_spawn": lambda h: h.emit(
                        HelloEnvelope(h.worker_id, h.generation)
                    ),
                    # One beat per poll keeps the heartbeat deadline
                    # permanently fresh while the task never completes.
                    "on_task": keep_beating,
                },
                {
                    "on_spawn": lambda h: h.emit(
                        HelloEnvelope(h.worker_id, h.generation)
                    ),
                    "on_task": gen2_task,
                },
            ]
        )
        # heartbeat_timeout far above the lease: only lease expiry can
        # reclaim here, which is the property under test.
        coordinator = make_coordinator(
            transport, heartbeat_timeout=10.0, lease_timeout=0.3
        )
        results = coordinator.run([make_envelope(0)])
        assert results[0].status == "ok"
        assert results[0].generation == 2
        stats = coordinator.worker_stats[0]
        assert stats.heartbeats_missed == 0
        assert stats.respawns == 1
        assert stats.retries == 1


# -- socket framing ----------------------------------------------------------------


class TestFraming:
    def test_frame_round_trip(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"kind": "hello", "n": 1})
            send_frame(a, {"kind": "task", "payload": ["x"] * 100})
            assert recv_frame(b) == {"kind": "hello", "n": 1}
            assert recv_frame(b) == {"kind": "task", "payload": ["x"] * 100}
        finally:
            a.close()
            b.close()

    def test_eof_mid_stream_returns_none(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"kind": "hello"})
            a.close()
            assert recv_frame(b) == {"kind": "hello"}
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_oversized_length_prefix_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall((1 << 31).to_bytes(4, "big"))
            with pytest.raises(WireFormatError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_task_envelope_json_round_trip(self):
        envelope = make_envelope(5)
        clone = task_envelope_from_obj(task_envelope_to_obj(envelope))
        assert clone.task_id == envelope.task_id
        assert clone.trials == envelope.trials
        assert clone.version == WIRE_VERSION

    def test_result_envelope_json_round_trip(self):
        envelope = ResultEnvelope(
            task_id=3,
            worker_id=1,
            status="ok",
            obs_prelude=({"kind": "event"},),
            generation=4,
        )
        clone = result_envelope_from_obj(result_envelope_to_obj(envelope))
        assert clone.task_id == 3
        assert clone.generation == 4
        assert list(clone.obs_prelude) == [{"kind": "event"}]

    def test_unknown_fields_rejected(self):
        obj = result_envelope_to_obj(
            ResultEnvelope(task_id=0, worker_id=0, status="ok")
        )
        obj["from_the_future"] = True
        with pytest.raises(WireFormatError):
            result_envelope_from_obj(obj)
        task_obj = task_envelope_to_obj(make_envelope(0))
        task_obj["novel_knob"] = 1
        with pytest.raises(WireFormatError):
            task_envelope_from_obj(task_obj)

    def test_config_and_spec_round_trip(self):
        config = SnowboardConfig(seed=11, corpus_budget=99, trials_per_pmc=5)
        assert config_from_obj(config_to_obj(config)) == config
        spec = WorkerSpec(config=config, obs_enabled=True, heartbeat_interval=0.25)
        clone = worker_spec_from_obj(worker_spec_to_obj(spec))
        assert clone.config == config
        assert clone.obs_enabled is True
        assert clone.heartbeat_interval == 0.25
        bad = config_to_obj(config)
        bad["knob_from_the_future"] = 1
        with pytest.raises(WireFormatError):
            config_from_obj(bad)


# -- socket handshake --------------------------------------------------------------


class TestSocketHandshake:
    @pytest.fixture()
    def listening_transport(self):
        transport = SocketTransport(
            WorkerSpec(config=SnowboardConfig(seed=3), heartbeat_interval=0.2),
            token="sesame",
            spawn_workers=False,
            handshake_timeout=5.0,
        )
        transport.spawn(0, 1)
        yield transport
        transport.close()

    def test_future_wire_version_rejected(self, listening_transport):
        transport = listening_transport
        with pytest.raises(WireFormatError):
            connect_worker(
                transport.host,
                transport.port,
                "sesame",
                wire_version=WIRE_VERSION + 1,
            )

    def test_bad_token_rejected(self, listening_transport):
        transport = listening_transport
        with pytest.raises(PermissionError):
            connect_worker(transport.host, transport.port, "wrong")

    def test_welcome_carries_slot_and_spec(self, listening_transport):
        transport = listening_transport
        sock, welcome = connect_worker(transport.host, transport.port, "sesame")
        try:
            assert welcome["worker_id"] == 0
            assert welcome["generation"] == 1
            assert welcome["wire_version"] == WIRE_VERSION
            spec = worker_spec_from_obj(welcome["spec"])
            assert spec.config.seed == 3
            assert spec.heartbeat_interval == 0.2
            # The completed handshake doubles as the first liveness
            # signal on the coordinator's channel.
            first = transport.recv(timeout=1.0)
            assert first == HeartbeatEnvelope(0, 1)
        finally:
            sock.close()

    def test_reconnect_claims_fresh_slot(self, listening_transport):
        """Reconnect-as-fresh-worker: a second dial after the first
        connection drops claims the next spawned slot (a new generation),
        never the dead one."""
        transport = listening_transport
        sock, welcome = connect_worker(transport.host, transport.port, "sesame")
        sock.close()
        # The coordinator respawns the slot at a higher generation.
        transport.spawn(0, 2)
        sock2, welcome2 = connect_worker(transport.host, transport.port, "sesame")
        try:
            assert welcome2["generation"] == 2
        finally:
            sock2.close()
