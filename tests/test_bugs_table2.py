"""Integration: every Table 2 bug analogue is detectable by its oracle.

For each planted bug we run its triggering concurrent test pair with
aggressive-but-seeded random scheduling and the stock detectors, then
check that the observation matches the right catalog row.  (The forced-
schedule reproductions of the trickier bugs live in the per-subsystem
test files; here we exercise the *detection* path end to end.)
"""

import pytest

from repro.detect.catalog import match_observations
from repro.detect.datarace import RaceDetector
from repro.detect.report import observe
from repro.fuzz.prog import Call, Res, prog
from repro.kernel.kernel import boot_kernel
from repro.sched.executor import Executor
from repro.sched.random_sched import RandomScheduler


@pytest.fixture(scope="module")
def ex():
    kernel, snapshot = boot_kernel()
    return Executor(kernel, snapshot)


def hunt(ex, writer, reader, bug_id, trials=40, probability=0.3):
    """Run seeded random interleavings until the bug id is observed."""
    for seed in range(trials):
        scheduler = RandomScheduler(seed=seed, switch_probability=probability)
        scheduler.begin_trial(0)
        detector = RaceDetector()
        result = ex.run_concurrent([writer, reader], scheduler=scheduler, race_detector=detector)
        grouped = match_observations(observe(result))
        if bug_id in grouped:
            return grouped[bug_id][0]
    return None


class TestDataRaceBugs:
    def test_sb05_fadvise_vs_blkraset(self, ex):
        writer = prog(Call("open", (1,)), Call("ioctl", (Res(0), 3, 64)))
        reader = prog(Call("open", (2,)), Call("fadvise", (Res(0),)))
        assert hunt(ex, writer, reader, "SB05") is not None

    def test_sb06_read_vs_set_blocksize(self, ex):
        writer = prog(Call("open", (1,)), Call("ioctl", (Res(0), 2, 1)))
        reader = prog(Call("open", (2,)), Call("read", (Res(0), 2)))
        assert hunt(ex, writer, reader, "SB06") is not None

    def test_sb07_send_vs_set_mtu(self, ex):
        writer = prog(Call("socket", (3,)), Call("ioctl", (Res(0), 6, 900)))
        reader = prog(Call("socket", (3,)), Call("sendmsg", (Res(0), 4000)))
        assert hunt(ex, writer, reader, "SB07") is not None

    def test_sb08_getname_vs_set_mac(self, ex):
        writer = prog(Call("socket", (0,)), Call("ioctl", (Res(0), 4, 0xAABBCCDDEEFF)))
        reader = prog(Call("socket", (1,)), Call("getsockname", (Res(0),)))
        assert hunt(ex, writer, reader, "SB08") is not None

    def test_sb09_ifsioc_vs_set_mac(self, ex):
        writer = prog(Call("socket", (0,)), Call("ioctl", (Res(0), 4, 0xAABBCCDDEEFF)))
        reader = prog(Call("socket", (0,)), Call("ioctl", (Res(0), 5, 0)))
        assert hunt(ex, writer, reader, "SB09") is not None

    def test_sb10_fib6_cookie(self, ex):
        # Several updates widen the window in which the reader's plain
        # cookie load can overlap a writer section.
        writer = prog(*[Call("route_update", (v,)) for v in (1, 2, 3, 4, 5, 6)])
        reader = prog(Call("socket", (3,)), Call("sendmsg", (Res(0), 100)))
        assert hunt(ex, writer, reader, "SB10", trials=80) is not None

    def test_sb13_alloc_stats(self, ex):
        test = prog(Call("msgget", (1,)))
        assert hunt(ex, test, test, "SB13") is not None

    def test_sb14_tty_open_vs_autoconfig(self, ex):
        writer = prog(Call("tty_open", ()), Call("ioctl", (Res(0), 7, 0)))
        reader = prog(Call("tty_open", ()))
        assert hunt(ex, writer, reader, "SB14") is not None

    def test_sb15_snd_ctl_add(self, ex):
        test = prog(Call("snd_ctl_add", (100,)))
        assert hunt(ex, test, test, "SB15") is not None

    def test_sb16_congestion_control(self, ex):
        writer = prog(Call("socket", (0,)), Call("setsockopt", (Res(0), 2, 5)))
        reader = prog(Call("socket", (0,)), Call("setsockopt", (Res(0), 1, 0)))
        assert hunt(ex, writer, reader, "SB16") is not None

    def test_sb17_fanout(self, ex):
        writer = prog(
            Call("socket", (1,)), Call("setsockopt", (Res(0), 3, 0)), Call("close", (Res(0),))
        )
        reader = prog(
            Call("socket", (1,)), Call("setsockopt", (Res(0), 3, 0)), Call("sendmsg", (Res(0), 1))
        )
        assert hunt(ex, writer, reader, "SB17") is not None

    def test_sb01_rhashtable_race(self, ex):
        writer = prog(Call("msgget", (2,)), Call("msgctl", (2, 0)))
        reader = prog(Call("msgget", (2,)))
        assert hunt(ex, writer, reader, "SB01") is not None


class TestAtomicityViolationBugs:
    def test_sb02_swap_boot_checksum(self, ex):
        test = prog(Call("open", (1,)), Call("ioctl", (Res(0), 1, 0)))
        obs = hunt(ex, test, test, "SB02", trials=60)
        assert obs is not None
        assert obs.kind == "console"

    def test_sb03_extent_magic(self, ex):
        test = prog(Call("open", (2,)), Call("write", (Res(0), 9)))
        obs = hunt(ex, test, test, "SB03", trials=60)
        assert obs is not None

    def test_sb04_io_error(self, ex):
        writer = prog(Call("open", (1,)), Call("ioctl", (Res(0), 2, 1)))
        reader = prog(Call("open", (2,)), Call("read", (Res(0), 2)))
        obs = hunt(ex, writer, reader, "SB04", trials=60)
        assert obs is not None


class TestPanicBugs:
    def test_sb12_l2tp_order_violation_is_found_without_race_report(self, ex):
        writer = prog(Call("socket", (2,)), Call("connect", (Res(0), 1)))
        reader = prog(
            Call("socket", (2,)), Call("connect", (Res(0), 1)), Call("sendmsg", (Res(0), 5))
        )
        obs = hunt(ex, writer, reader, "SB12", trials=80, probability=0.4)
        assert obs is not None
        assert obs.kind == "console"  # found by the console checker, not a DR

    def test_sb11_configfs(self, ex):
        writer = prog(Call("mkdir", (2,)))
        reader = prog(Call("lookup", (2,)))
        assert hunt(ex, writer, reader, "SB11", trials=60, probability=0.4) is not None


class TestCoverageOfCatalog:
    def test_all_17_bugs_have_a_reachable_trigger(self):
        """Meta-check: the union of the tests above covers the catalog."""
        import inspect
        import sys

        source = inspect.getsource(sys.modules[self.__class__.__module__])
        for i in range(1, 18):
            assert f"SB{i:02d}" in source
