"""Tests for the fuzzing layer: programs, generator, coverage, corpus."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.corpus import Corpus, build_corpus
from repro.fuzz.coverage import edge_coverage
from repro.fuzz.generator import ProgramGenerator
from repro.fuzz.prog import Call, Program, Res, prog, resolve_arg
from repro.fuzz.spec import (
    DEFAULT_SEEDS,
    DOMAINS,
    FD_KINDS,
    SPEC_BY_NAME,
    SYSCALL_SPECS,
    spec_of_call,
)


class TestProgramModel:
    def test_valid_resource_reference(self):
        p = prog(Call("open", (1,)), Call("read", (Res(0), 1)))
        assert len(p) == 2

    def test_forward_reference_rejected(self):
        with pytest.raises(ValueError):
            prog(Call("read", (Res(0), 1)))

    def test_self_reference_rejected(self):
        with pytest.raises(ValueError):
            prog(Call("open", (1,)), Call("read", (Res(1), 1)))

    def test_programs_are_hashable(self):
        a = prog(Call("open", (1,)))
        b = prog(Call("open", (1,)))
        assert a == b
        assert hash(a) == hash(b)

    def test_resolve_constant(self):
        assert resolve_arg(5, []) == 5

    def test_resolve_resource(self):
        assert resolve_arg(Res(1), [10, 20]) == 20


class TestSpecs:
    def test_typed_producers_exist_for_every_fd_kind(self):
        """Every fd resource type consumed has a producing syscall."""
        produced = {s.makes for s in SYSCALL_SPECS if s.makes}
        consumed = set()
        for spec in SYSCALL_SPECS:
            for kind in spec.args:
                if isinstance(kind, str) and kind in FD_KINDS and kind != "fd:any":
                    consumed.add(kind.split(":")[1])
        assert consumed <= produced

    def test_domains_cover_all_plain_arg_kinds(self):
        kinds = set()
        for spec in SYSCALL_SPECS:
            for kind in spec.args:
                if isinstance(kind, str) and kind not in FD_KINDS:
                    kinds.add(kind)
        assert kinds <= set(DOMAINS)

    def test_spec_lookup(self):
        assert SPEC_BY_NAME["open"].makes == "file"

    def test_ioctl_variants_resolved_by_constant(self):
        call = Call("ioctl", (Res(0), 4, 0xAABB))
        assert spec_of_call(prog(Call("socket", (0,)), call).calls[1]).variant == "set_mac"

    def test_default_seeds_are_valid_programs(self):
        assert len(DEFAULT_SEEDS) >= 10
        for seed_prog in DEFAULT_SEEDS:
            for i, call in enumerate(seed_prog.calls):
                for arg in call.args:
                    if isinstance(arg, Res):
                        assert 0 <= arg.index < i


def _validate(program: Program) -> None:
    """Structural validity: refs point backwards at typed fd producers."""
    for i, call in enumerate(program.calls):
        assert call.name in SPEC_BY_NAME
        for arg in call.args:
            if isinstance(arg, Res):
                assert 0 <= arg.index < i
                assert spec_of_call(program.calls[arg.index]).makes is not None


class TestGenerator:
    def test_generation_is_deterministic(self):
        a = ProgramGenerator(seed=3)
        b = ProgramGenerator(seed=3)
        assert [a.generate() for _ in range(10)] == [b.generate() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = ProgramGenerator(seed=1).generate(length=6)
        b = ProgramGenerator(seed=2).generate(length=6)
        assert a != b

    def test_generated_programs_are_valid(self):
        generator = ProgramGenerator(seed=7)
        for _ in range(200):
            _validate(generator.generate())

    def test_mutations_preserve_validity(self):
        generator = ProgramGenerator(seed=11)
        program = generator.generate(length=4)
        for _ in range(300):
            program = generator.mutate(program)
            _validate(program)

    def test_length_bounds(self):
        generator = ProgramGenerator(seed=5, max_len=4)
        for _ in range(100):
            assert 1 <= len(generator.generate()) <= 4


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_property_any_seed_generates_valid_programs(seed):
    generator = ProgramGenerator(seed=seed)
    program = generator.generate()
    _validate(program)
    for _ in range(20):
        program = generator.mutate(program)
        _validate(program)


class TestCoverage:
    def test_edges_from_consecutive_instructions(self, executor):
        from repro.fuzz.prog import Call, prog

        result = executor.run_sequential(prog(Call("msgget", (1,))))
        edges = edge_coverage(result.accesses)
        assert edges  # something executed
        all_ins = {a.ins for a in result.accesses}
        for src, dst in edges:
            assert src in all_ins and dst in all_ins

    def test_no_self_edges(self, executor):
        from repro.fuzz.prog import Call, prog

        result = executor.run_sequential(prog(Call("msgget", (1,)), Call("msgget", (1,))))
        assert all(src != dst for src, dst in edge_coverage(result.accesses))

    def test_thread_filter(self):
        from repro.machine.accesses import AccessType, MemoryAccess

        accesses = [
            MemoryAccess(0, 0, AccessType.READ, 0x1, 1, 0, "a"),
            MemoryAccess(1, 1, AccessType.READ, 0x1, 1, 0, "x"),
            MemoryAccess(2, 0, AccessType.READ, 0x1, 1, 0, "b"),
            MemoryAccess(3, 1, AccessType.READ, 0x1, 1, 0, "y"),
        ]
        assert edge_coverage(accesses, thread=0) == frozenset({("a", "b")})
        assert edge_coverage(accesses, thread=1) == frozenset({("x", "y")})


class TestCorpus:
    def test_distillation_rejects_redundant_tests(self, executor):
        corpus = Corpus()
        program = prog(Call("msgget", (1,)))
        first = corpus.add(program, executor.run_sequential(program))
        second = corpus.add(program, executor.run_sequential(program))
        assert first is not None
        assert second is None
        assert len(corpus) == 1

    def test_coverage_grows_monotonically(self, executor):
        corpus = build_corpus(executor, seed=1, budget=60)
        assert len(corpus) >= 5
        assert corpus.generated == 60
        union = set()
        for entry in corpus:
            assert not entry.edges <= union  # each entry added something
            union |= entry.edges
        assert union == corpus.total_edges

    def test_corpus_is_deterministic(self, executor):
        a = build_corpus(executor, seed=4, budget=40)
        b = build_corpus(executor, seed=4, budget=40)
        assert a.programs() == b.programs()

    def test_seed_programs_enter_first(self, executor):
        seed_prog = prog(Call("msgget", (3,)))
        corpus = build_corpus(executor, seed=1, budget=10, seeds=(seed_prog,))
        assert corpus.entries[0].program == seed_prog

    def test_panicking_tests_are_rejected(self, executor):
        """Sequential panics are not our target; they must not enter."""
        corpus = build_corpus(executor, seed=1, budget=30)
        for entry in corpus:
            assert entry.result.completed
