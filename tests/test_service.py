"""The multi-tenant campaign service (engine layer, in-process).

Contracts pinned here:

* **Solo equivalence** — N jobs interleaved round-robin through
  :class:`CampaignService` each produce a summary, funnel totals and
  reproduction packages bit-identical to the same spec run solo through
  ``run_rounds(spec.rounds)`` — including jobs on the multi-process
  and socket fleets (the latter with every per-job fleet knob set).
* **Restart recovery** — abandon the service mid-campaign (stand-in for
  SIGKILL: no close, no flush beyond the journals' own discipline),
  reopen the same data directory, and every job resumes to the same
  bit-identical summary; jobs that owned a turn come back ``pending``.
* The job state machine rejects illegal edges, pause/resume/cancel act
  at round boundaries, and snapshot/fork spawn children that continue
  the parent's campaign bit-identically.
* The registry journal replays across reopen, tolerates a torn tail,
  and refuses records that fail their digest check.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import JsonlSink, Observer
from repro.obs.stats import funnel_totals, load_stats
from repro.orchestrate.pipeline import Snowboard
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    PAUSED,
    PENDING,
    RUNNING,
    TERMINAL_STATES,
    CampaignJob,
    FairScheduler,
    InvalidTransition,
    JobRegistry,
    JobSpec,
    RegistryError,
)
from repro.service.daemon import CampaignService, ServiceError
from repro.service.runner import JobRunner

BASE = dict(
    rounds=2,
    round_budget=5,
    seed=11,
    corpus_budget=60,
    trials=4,
    max_instructions=40_000,
)
SPECS = {
    "alice": dict(BASE),
    "bob": dict(BASE, seed=13, rounds=3),
    "carol": dict(BASE, seed=17, workers=2, fleet="processes"),
    # Socket fleet with every per-job fleet knob set: the knobs are
    # tuning only, so dana must stay bit-identical to her solo run too.
    "dana": dict(
        BASE,
        seed=19,
        workers=2,
        fleet="sockets",
        lease_timeout=60.0,
        heartbeat_interval=0.1,
        heartbeat_timeout=5.0,
    ),
}


def run_solo(spec_obj, trace_path=None):
    """The reference: the same spec through one ``run_rounds`` call."""
    spec = JobSpec.from_obj(spec_obj)
    observer = None
    if trace_path is not None:
        observer = Observer(JsonlSink(trace_path, header={"solo": True}))
    snowboard = Snowboard(spec.config(), observer=observer)
    result = snowboard.run_rounds(
        spec.rounds,
        round_budget=spec.round_budget,
        strategy=spec.strategy,
        scheduler_kind=spec.scheduler_kind,
        trials=spec.trials,
        workers=spec.workers,
        corpus_growth=spec.growth(),
        fleet=spec.fleet,
    )
    if observer is not None:
        observer.close()
    return snowboard, result


def drain(service, max_turns=100):
    turns = 0
    while any(j["state"] not in TERMINAL_STATES for j in service.jobs()):
        assert service.run_turn(timeout=0.1), "queue empty with live jobs"
        turns += 1
        assert turns < max_turns, "service failed to converge"
    return turns


@pytest.fixture(scope="module")
def solo(tmp_path_factory):
    """Reference summaries/packages/funnels for every tenant's spec."""
    root = tmp_path_factory.mktemp("solo")
    out = {}
    for tenant, spec_obj in SPECS.items():
        trace = str(root / f"{tenant}.jsonl")
        snowboard, result = run_solo(spec_obj, trace)
        out[tenant] = {
            "summary": result.summary(),
            "packages": {
                bug: json.loads(pkg.to_json())
                for bug, pkg in snowboard.repro_packages.items()
            },
            "funnel": funnel_totals(load_stats(trace)),
        }
    return out


@pytest.fixture(scope="module")
def interleaved(tmp_path_factory, solo):
    """One service interleaving every tenant's job to completion."""
    root = str(tmp_path_factory.mktemp("service"))
    service = CampaignService(root)
    ids = {t: service.submit(t, s)["job_id"] for t, s in SPECS.items()}
    drain(service)
    yield service, ids, root
    service.stop()


class TestJobSpec:
    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown JobSpec fields"):
            JobSpec.from_obj({"rounds": 1, "budget": 9})

    @pytest.mark.parametrize(
        "bad",
        [
            {"rounds": 0},
            {"round_budget": 0},
            {"trials": 0},
            {"workers": 0},
            {"fleet": "boats"},
            {"fleet": "processes", "workers": 1},
            {"fleet": "sockets", "workers": 1},
            {"lease_timeout": 0},
            {"heartbeat_interval": 0.0},
            {"heartbeat_timeout": -1.0},
        ],
    )
    def test_rejects_invalid_values(self, bad):
        with pytest.raises(ValueError):
            JobSpec.from_obj(bad)

    def test_growth_matches_run_rounds_default(self):
        # run_rounds defaults growth to half the corpus budget; the spec
        # must resolve identically or stepped campaigns diverge.
        assert JobSpec(corpus_budget=60).growth() == 30
        assert JobSpec(corpus_budget=1).growth() == 1
        assert JobSpec(corpus_growth=7).growth() == 7

    def test_roundtrips_through_obj(self):
        for tenant in ("carol", "dana"):
            spec = JobSpec.from_obj(SPECS[tenant])
            assert JobSpec.from_obj(spec.to_obj()) == spec

    def test_fleet_knobs_reach_pipeline_config(self):
        config = JobSpec.from_obj(SPECS["dana"]).config()
        assert config.fleet_lease_timeout == 60.0
        assert config.fleet_heartbeat_interval == 0.1
        assert config.fleet_heartbeat_timeout == 5.0

    def test_extended_only_grows(self):
        spec = JobSpec(rounds=3)
        assert spec.extended(5).rounds == 5
        with pytest.raises(ValueError, match="below parent target"):
            spec.extended(2)


class TestStateMachine:
    def job(self):
        return CampaignJob(job_id="job-0001", tenant="t", spec=JobSpec())

    def test_happy_path(self):
        job = self.job()
        for state in (RUNNING, PAUSED, PENDING, RUNNING, DONE):
            job.transition(state)
        assert job.terminal

    def test_terminal_states_are_final(self):
        job = self.job()
        job.transition(CANCELLED)
        with pytest.raises(InvalidTransition):
            job.transition(PENDING)

    def test_pending_cannot_finish_directly(self):
        with pytest.raises(InvalidTransition):
            self.job().transition(DONE)


class TestFairScheduler:
    def test_fifo_rotation(self):
        sched = FairScheduler()
        for job_id in ("a", "b", "c"):
            sched.enqueue(job_id)
        assert sched.next_turn(0) == "a"
        sched.enqueue("a")  # back of the line after its round
        assert [sched.next_turn(0) for _ in range(3)] == ["b", "c", "a"]

    def test_enqueue_is_idempotent(self):
        sched = FairScheduler()
        sched.enqueue("a")
        sched.enqueue("a")
        assert len(sched) == 1

    def test_dequeue_and_empty_timeout(self):
        sched = FairScheduler()
        sched.enqueue("a")
        sched.dequeue("a")
        assert "a" not in sched
        assert sched.next_turn(0) is None


class TestInterleavedEqualsSolo:
    def test_all_jobs_finish(self, interleaved):
        service, ids, _ = interleaved
        for job in service.jobs():
            assert job["state"] == DONE
            assert job["rounds_done"] == job["spec"]["rounds"]

    @pytest.mark.parametrize("tenant", sorted(SPECS))
    def test_summary_bit_identical(self, interleaved, solo, tenant):
        service, ids, _ = interleaved
        assert service.summary(ids[tenant]) == solo[tenant]["summary"]

    @pytest.mark.parametrize("tenant", sorted(SPECS))
    def test_packages_bit_identical(self, interleaved, solo, tenant):
        service, ids, _ = interleaved
        assert service.packages(ids[tenant]) == solo[tenant]["packages"]

    @pytest.mark.parametrize("tenant", sorted(SPECS))
    def test_funnel_totals_match_solo(self, interleaved, solo, tenant):
        # No restarts in this fixture, so the per-job trace carries the
        # full uninterrupted funnel — it must match the solo campaign's.
        service, ids, _ = interleaved
        stats = load_stats(service.registry.trace_path(ids[tenant]))
        assert funnel_totals(stats) == solo[tenant]["funnel"]

    def test_persisted_summary_file_matches_api(self, interleaved):
        service, ids, _ = interleaved
        path = service.registry.summary_path(ids["alice"])
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle) == service.summary(ids["alice"])

    def test_trace_streams_complete_lines(self, interleaved):
        service, ids, _ = interleaved
        offset, lines, chunks = 0, [], 0
        while True:
            offset, chunk = service.trace(ids["alice"], offset, limit=7)
            if not chunk:
                break
            chunks += 1
            lines.extend(chunk)
        assert chunks > 1  # offset-resumed streaming actually paged
        records = [json.loads(line) for line in lines]
        assert records[0]["kind"] == "header"
        assert records[0]["job_id"] == ids["alice"]
        assert any(r["kind"] == "metrics" for r in records)

    def test_tenant_filter(self, interleaved):
        service, ids, _ = interleaved
        jobs = service.jobs(tenant="bob")
        assert [j["job_id"] for j in jobs] == [ids["bob"]]


class TestRestartRecovery:
    def test_killed_service_resumes_bit_identically(self, tmp_path, solo):
        root = str(tmp_path / "svc")
        service = CampaignService(root)
        ids = {t: service.submit(t, s)["job_id"] for t, s in SPECS.items()}
        for _ in range(4):  # partial progress across the jobs
            assert service.run_turn(timeout=0.1)
        # Simulated SIGKILL: abandon the instance without stop().
        del service
        revived = CampaignService(root)
        states = {j["job_id"]: j["state"] for j in revived.jobs()}
        assert set(states.values()) <= {PENDING, DONE}
        drain(revived)
        for tenant, job_id in ids.items():
            assert revived.summary(job_id) == solo[tenant]["summary"]
            assert revived.packages(job_id) == solo[tenant]["packages"]
        revived.stop()

    def test_every_kill_point_recovers(self, tmp_path, solo):
        # Kill after each possible number of completed turns of a
        # two-round campaign; every restart must land on the solo summary.
        spec = SPECS["alice"]
        for kill_after in (0, 1, 2):
            root = str(tmp_path / f"svc-{kill_after}")
            service = CampaignService(root)
            job_id = service.submit("alice", spec)["job_id"]
            for _ in range(kill_after):
                service.run_turn(timeout=0.1)
            del service  # simulated SIGKILL
            revived = CampaignService(root)
            drain(revived)
            assert revived.summary(job_id) == solo["alice"]["summary"]
            revived.stop()


class TestLifecycle:
    def test_pause_resume_round_trip(self, tmp_path, solo):
        service = CampaignService(str(tmp_path / "svc"))
        job_id = service.submit("alice", SPECS["alice"])["job_id"]
        service.run_turn(timeout=0.1)
        assert service.pause(job_id)["state"] == PAUSED
        assert service.run_turn(timeout=0) is False  # nothing runnable
        assert service.resume(job_id)["state"] == PENDING
        drain(service)
        assert service.summary(job_id) == solo["alice"]["summary"]
        service.stop()

    def test_cancel_is_terminal(self, tmp_path):
        service = CampaignService(str(tmp_path / "svc"))
        job_id = service.submit("alice", SPECS["alice"])["job_id"]
        assert service.cancel(job_id)["state"] == CANCELLED
        with pytest.raises(ServiceError) as err:
            service.resume(job_id)
        assert err.value.status == 409
        assert service.run_turn(timeout=0) is False  # dequeued on cancel
        service.stop()

    def test_summary_before_done_conflicts(self, tmp_path):
        service = CampaignService(str(tmp_path / "svc"))
        job_id = service.submit("alice", SPECS["alice"])["job_id"]
        with pytest.raises(ServiceError) as err:
            service.summary(job_id)
        assert err.value.status == 409
        service.stop()

    def test_unknown_job_is_404(self, tmp_path):
        service = CampaignService(str(tmp_path / "svc"))
        with pytest.raises(ServiceError) as err:
            service.status("job-9999")
        assert err.value.status == 404
        service.stop()

    def test_bad_spec_is_400(self, tmp_path):
        service = CampaignService(str(tmp_path / "svc"))
        with pytest.raises(ServiceError) as err:
            service.submit("alice", {"rounds": 0})
        assert err.value.status == 400
        service.stop()

    def test_pause_landing_mid_final_round_settles_done(
        self, tmp_path, solo, monkeypatch
    ):
        # A pause arriving while the campaign's last round executes must
        # not crash the scheduler loop: the round outcome wins the race.
        service = CampaignService(str(tmp_path / "svc"))
        job_id = service.submit("alice", SPECS["alice"])["job_id"]
        service.run_turn(timeout=0.1)  # round 1 of 2
        orig_step = JobRunner.step

        def step_then_pause(runner):
            done = orig_step(runner)
            service.pause(runner.job.job_id)  # lands "mid-round"
            return done

        monkeypatch.setattr(JobRunner, "step", step_then_pause)
        assert service.run_turn(timeout=0.1)  # must not raise
        monkeypatch.setattr(JobRunner, "step", orig_step)
        assert service.status(job_id)["state"] == DONE
        assert service.summary(job_id) == solo["alice"]["summary"]
        service.stop()

    def test_pause_resume_mid_final_round_settles_done(
        self, tmp_path, solo, monkeypatch
    ):
        service = CampaignService(str(tmp_path / "svc"))
        job_id = service.submit("alice", SPECS["alice"])["job_id"]
        service.run_turn(timeout=0.1)  # round 1 of 2
        orig_step = JobRunner.step

        def step_then_pause_resume(runner):
            done = orig_step(runner)
            service.pause(runner.job.job_id)
            service.resume(runner.job.job_id)  # job is PENDING + queued
            return done

        monkeypatch.setattr(JobRunner, "step", step_then_pause_resume)
        assert service.run_turn(timeout=0.1)  # must not raise
        monkeypatch.setattr(JobRunner, "step", orig_step)
        assert service.status(job_id)["state"] == DONE
        # The resume's queue entry was dropped with the terminal hop.
        assert service.run_turn(timeout=0) is False
        assert service.summary(job_id) == solo["alice"]["summary"]
        service.stop()

    def test_pause_mid_round_failure_settles_failed(
        self, tmp_path, monkeypatch
    ):
        service = CampaignService(str(tmp_path / "svc"))
        job_id = service.submit("alice", SPECS["alice"])["job_id"]

        def step_pause_boom(runner):
            service.pause(runner.job.job_id)
            raise RuntimeError("engine exploded mid-round")

        monkeypatch.setattr(JobRunner, "step", step_pause_boom)
        assert service.run_turn(timeout=0.1)  # must not raise
        status = service.status(job_id)
        assert status["state"] == FAILED
        assert "engine exploded" in status["error"]
        service.stop()


class TestSnapshotFork:
    def test_fork_from_mid_campaign_snapshot(self, tmp_path, solo):
        service = CampaignService(str(tmp_path / "svc"))
        parent = service.submit("alice", SPECS["alice"])["job_id"]
        service.run_turn(timeout=0.1)  # round 1 of 2 journalled
        snap = service.snapshot(parent)["snapshot"]
        child = service.fork(parent, snap, "alice-fork")["job_id"]
        drain(service)
        # The child replayed the parent's first round from the snapshot
        # and ran the rest live: same campaign, bit for bit.
        assert service.summary(child) == solo["alice"]["summary"]
        assert service.summary(parent) == solo["alice"]["summary"]
        assert service.status(child)["forked_from"] == f"{parent}/{snap}"
        service.stop()

    def test_fork_extends_rounds(self, tmp_path, solo):
        service = CampaignService(str(tmp_path / "svc"))
        parent = service.submit("bob", SPECS["bob"])["job_id"]
        drain(service)
        snap = service.snapshot(parent)["snapshot"]
        child = service.fork(parent, snap, "bob", rounds=4)["job_id"]
        drain(service)
        _, extended = run_solo(dict(SPECS["bob"], rounds=4))
        assert service.summary(child) == extended.summary()
        service.stop()

    def test_fork_unknown_snapshot_is_400(self, tmp_path):
        service = CampaignService(str(tmp_path / "svc"))
        parent = service.submit("alice", SPECS["alice"])["job_id"]
        with pytest.raises(ServiceError) as err:
            service.fork(parent, "snap-9999", "x")
        assert err.value.status == 400
        service.stop()


class TestRegistry:
    def test_replay_preserves_jobs_and_specs(self, tmp_path):
        root = str(tmp_path / "reg")
        registry = JobRegistry(root)
        spec = JobSpec.from_obj(SPECS["bob"])
        job = registry.submit("bob", spec)
        job.transition(RUNNING)
        job.rounds_done = 1
        registry.record_state(job)
        registry.close()
        revived = JobRegistry(root)
        back = revived.job(job.job_id)
        assert back.spec == spec
        assert back.rounds_done == 1
        assert back.state == PENDING  # running demoted on recovery
        revived.close()

    def test_submit_seq_survives_restart(self, tmp_path):
        root = str(tmp_path / "reg")
        registry = JobRegistry(root)
        first = registry.submit("a", JobSpec())
        registry.close()
        revived = JobRegistry(root)
        second = revived.submit("b", JobSpec())
        assert second.submit_seq == first.submit_seq + 1
        assert second.job_id != first.job_id
        revived.close()

    def test_torn_tail_is_tolerated(self, tmp_path):
        root = str(tmp_path / "reg")
        registry = JobRegistry(root)
        job = registry.submit("a", JobSpec())
        registry.close()
        with open(os.path.join(root, "registry.jsonl"), "a") as handle:
            handle.write('{"kind": "state", "job_id"')  # torn mid-record
        revived = JobRegistry(root)
        assert revived.job(job.job_id).state == PENDING
        revived.close()

    def test_torn_tail_is_truncated_before_new_appends(self, tmp_path):
        # A torn tail must be cut off on reopen: appending the next
        # record glued onto the partial line would make the *following*
        # replay stop there and silently drop everything after it.
        root = str(tmp_path / "reg")
        registry = JobRegistry(root)
        first = registry.submit("a", JobSpec())
        registry.close()
        with open(os.path.join(root, "registry.jsonl"), "a") as handle:
            handle.write('{"kind": "state", "job_id"')  # torn mid-record
        revived = JobRegistry(root)
        second = revived.submit("b", JobSpec())
        revived.close()
        third = JobRegistry(root)
        assert set(third.jobs) == {first.job_id, second.job_id}
        assert third.job(second.job_id).tenant == "b"
        third.close()

    def test_fork_copies_checkpoint_before_submit_record(self, tmp_path):
        # Crash contract: if the child's submit record made it into the
        # journal, its checkpoint must already be on disk — never a
        # recovered fork that silently restarts from round one.
        root = str(tmp_path / "reg")
        registry = JobRegistry(root)
        parent = registry.submit("a", JobSpec())
        with open(registry.checkpoint_path(parent.job_id), "w") as handle:
            handle.write('{"kind": "round"}\n')
        snap = registry.snapshot(parent.job_id)

        def boom(obj):
            raise RuntimeError("simulated crash at the submit record")

        registry._append = boom  # instance override: crash before append
        with pytest.raises(RuntimeError, match="simulated crash"):
            registry.fork(parent.job_id, snap, "b")
        del registry._append
        # The copy preceded the (never-written) record ...
        assert os.path.exists(registry.checkpoint_path("job-0002"))
        registry.close()
        # ... and on recovery the orphan id is reused by a fresh submit,
        # which must not adopt the dead fork's journal.
        revived = JobRegistry(root)
        fresh = revived.submit("c", JobSpec())
        assert fresh.job_id == "job-0002"
        assert not os.path.exists(revived.checkpoint_path(fresh.job_id))
        revived.close()

    def test_digest_corruption_is_refused(self, tmp_path):
        root = str(tmp_path / "reg")
        registry = JobRegistry(root)
        registry.submit("a", JobSpec())
        registry.close()
        path = os.path.join(root, "registry.jsonl")
        with open(path, encoding="utf-8") as handle:
            record = json.loads(handle.readline())
        record["job"]["tenant"] = "mallory"  # digest now stale
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        with pytest.raises(RegistryError, match="digest"):
            JobRegistry(root)
