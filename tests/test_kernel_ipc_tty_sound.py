"""Tests for the IPC, TTY and sound subsystems."""


from repro.fuzz.prog import Call, Res, prog
from repro.kernel.errors import EBUSY, ENOENT, ENOMEM
from repro.kernel.kernel import boot_kernel
from repro.sched.executor import Executor


class TestIpc:
    def test_msgget_creates_and_returns_key_id(self, executor):
        result = executor.run_sequential(prog(Call("msgget", (3,))))
        assert result.returns[0] == [3]

    def test_msgget_is_idempotent(self, executor):
        result = executor.run_sequential(prog(Call("msgget", (3,)), Call("msgget", (3,))))
        assert result.returns[0] == [3, 3]

    def test_snd_then_rcv_roundtrip(self, executor):
        result = executor.run_sequential(
            prog(Call("msgget", (1,)), Call("msgsnd", (1, 0xABC)), Call("msgrcv", (1,)))
        )
        assert result.returns[0] == [1, 0, 0xABC]

    def test_rmid_removes(self, executor):
        result = executor.run_sequential(
            prog(Call("msgget", (1,)), Call("msgctl", (1, 0)), Call("msgrcv", (1,)))
        )
        assert result.returns[0] == [1, 0, ENOENT]

    def test_rmid_missing_queue(self, executor):
        result = executor.run_sequential(prog(Call("msgctl", (5, 0))))
        assert result.returns[0] == [ENOENT]

    def test_stat_reports_qbytes(self, executor):
        result = executor.run_sequential(prog(Call("msgget", (2,)), Call("msgctl", (2, 1))))
        assert result.returns[0] == [2, 16384]

    def test_send_to_missing_queue(self, executor):
        result = executor.run_sequential(prog(Call("msgsnd", (6, 1))))
        assert result.returns[0] == [ENOENT]

    def test_colliding_keys_share_bucket(self, executor):
        """Keys 1 and 5 hash to one bucket; both queues must work."""
        result = executor.run_sequential(
            prog(
                Call("msgget", (1,)),
                Call("msgget", (5,)),
                Call("msgsnd", (1, 11)),
                Call("msgsnd", (5, 55)),
                Call("msgrcv", (1,)),
                Call("msgrcv", (5,)),
            )
        )
        assert result.returns[0][-2:] == [11, 55]


class TestTty:
    def test_open_returns_fd(self, executor):
        result = executor.run_sequential(prog(Call("tty_open", ())))
        assert result.returns[0][0] >= 0

    def test_autoconfig_restores_type(self, executor):
        result = executor.run_sequential(
            prog(Call("tty_open", ()), Call("ioctl", (Res(0), 7, 0)), Call("tty_open", ()))
        )
        assert result.returns[0][1] == 0
        assert result.returns[0][2] >= 0  # port type intact afterwards

    def test_open_count_increments(self):
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        from repro.kernel.subsystems.tty import UART_PORT

        executor.run_sequential(prog(Call("tty_open", ()), Call("tty_open", ())))
        tty = kernel.subsystems["tty"]
        count = kernel.machine.memory.read_int(
            UART_PORT.addr(tty.port, "open_count"), 8
        )
        assert count == 2

    def test_open_during_autoconfig_window_fails(self):
        """Bug #14: opener observes the transient unknown port type."""
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        from repro.kernel.subsystems.tty import PORT_UNKNOWN, UART_PORT

        writer = prog(Call("tty_open", ()), Call("ioctl", (Res(0), 7, 0)))
        reader = prog(Call("tty_open", ()))
        tty = kernel.subsystems["tty"]
        type_addr = UART_PORT.addr(tty.port, "type")

        class ForceWindow:
            def __init__(self):
                self.switched = False

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                if (
                    access.thread == 0
                    and not self.switched
                    and access.is_write
                    and access.addr == type_addr
                    and access.value == PORT_UNKNOWN
                ):
                    self.switched = True
                    return True
                return False

        result = executor.run_concurrent([writer, reader], scheduler=ForceWindow())
        assert result.returns[1][0] == EBUSY
        assert any("port type unknown" in line for line in result.console)


class TestSound:
    def test_add_accounts_bytes(self, executor):
        result = executor.run_sequential(
            prog(Call("snd_ctl_add", (100,)), Call("snd_ctl_info", ()))
        )
        assert result.returns[0] == [100, 100]

    def test_add_accumulates(self, executor):
        result = executor.run_sequential(
            prog(Call("snd_ctl_add", (100,)), Call("snd_ctl_add", (50,)))
        )
        assert result.returns[0] == [100, 150]

    def test_quota_enforced_sequentially(self, executor):
        calls = tuple(Call("snd_ctl_add", (1000,)) for _ in range(5))
        result = executor.run_sequential(prog(*calls))
        assert result.returns[0][:4] == [1000, 2000, 3000, 4000]
        assert result.returns[0][4] == ENOMEM

    def test_quota_bypass_under_race(self):
        """Bug #15: two adds read the same quota and both pass the check."""
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        from repro.kernel.subsystems.sound import SND_CARD

        # Two adds of 500 bytes: sequentially the accounting ends at 1000;
        # racing between check and store, one update is lost.
        size = 500
        test = prog(Call("snd_ctl_add", (size,)))

        class ForceBetweenCheckAndStore:
            def __init__(self):
                self.switched = False

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                if (
                    access.thread == 0
                    and not self.switched
                    and access.is_read
                    and "sys_snd_ctl_add" in access.ins
                ):
                    self.switched = True
                    return True
                return False

        result = executor.run_concurrent([test, test], scheduler=ForceBetweenCheckAndStore())
        returns = [r[0] for r in result.returns]
        assert returns == [size, size]  # both saw the same base accounting
        sound = kernel.subsystems["sound"]
        used = kernel.machine.memory.read_int(
            SND_CARD.addr(sound.card, "user_ctl_bytes"), 8
        )
        assert used == size  # one update lost: quota undercounts by 500
