"""Golden-equivalence tests for the interpreter hot-path overhaul.

The optimisation contract is behavioural invisibility: cached
instruction addresses, single-page memory fast paths, the columnar
access trace and the class-dispatch executor loop must not change any
observable result.  The constants below were captured from a fixed-seed
campaign run at the pre-optimisation commit (d1c5f1d) and hard-code
what "observable" means:

* the full ``summary()`` of a serial AND a workers=2 campaign,
* the exact access trace of one known concurrent trial (row digest),
* its switch points, and that ``replay_switch_points`` reproduces it,
* the exact sequential profiling trace of one corpus entry.

If any refactor of the executor, memory, trace, scheduler or detector
shifts a single value, address, or interleaving, these digests move.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.detect.datarace import RaceDetector
from repro.orchestrate.pipeline import Snowboard, SnowboardConfig

# -- goldens captured at commit d1c5f1d (pre-optimisation) -------------------

GOLDEN_CONFIG = dict(seed=7, corpus_budget=120, trials_per_pmc=8)
TEST_BUDGET = 8

GOLDEN_SUMMARY = {
    "strategy": "S-INS-PAIR",
    "exemplar_pmcs": 298,
    "tested_pmcs": 8,
    "trials": 25,
    "instructions": 3876,
    "exercised_pmcs": 2,
    "accuracy": 0.25,
    "bugs": {"SB01": 4, "SB11": 7, "SB13": 0, "SB17": 2},
    "observations": 26,
    "task_failures": 0,
}

# Trial 0 of the first generated test (scheduler seed = config.seed + 0).
TRIAL0_ACCESSES = 93
TRIAL0_SWITCH_POINTS = [50, 57]
TRIAL0_DIGEST = "c88bfebd7589c48c41585bbcc1ae2a6582e3ba3deb87d36d65670110396895b4"

# Sequential profiling run of corpus entry 0.
SEQUENTIAL_ACCESSES = 71
SEQUENTIAL_DIGEST = "ce0a1e354055c7a2b13e7ddc62f54698ae6842d3d0485e4f9321c3381e6a32db"


def trace_rows(accesses):
    """Full materialisation of a trace — every observable field."""
    return [
        (a.seq, a.thread, a.type.value, a.addr, a.size, a.value, a.ins, a.is_stack)
        for a in accesses
    ]


def digest(rows) -> str:
    return hashlib.sha256(repr(rows).encode()).hexdigest()


@pytest.fixture(scope="module")
def snowboard():
    return Snowboard(SnowboardConfig(**GOLDEN_CONFIG)).prepare()


class TestCampaignEquivalence:
    def test_serial_summary_matches_pre_optimisation_run(self, snowboard):
        campaign = snowboard.run_campaign("S-INS-PAIR", test_budget=TEST_BUDGET)
        assert campaign.summary() == GOLDEN_SUMMARY

    def test_parallel_summary_matches_pre_optimisation_run(self):
        # A fresh instance: worker kernels boot independently, and the
        # merged result must still be bit-identical to the golden serial
        # summary (the determinism contract of execute_tests_parallel).
        snowboard = Snowboard(SnowboardConfig(**GOLDEN_CONFIG))
        campaign = snowboard.run_campaign(
            "S-INS-PAIR", test_budget=TEST_BUDGET, workers=2
        )
        assert campaign.summary() == GOLDEN_SUMMARY


class TestTraceEquivalence:
    def run_trial0(self, snowboard):
        tests, _ = snowboard.generate_tests("S-INS-PAIR", limit=TEST_BUDGET)
        test = tests[0]
        scheduler = snowboard.make_scheduler(test, seed=snowboard.config.seed)
        scheduler.begin_trial(0)
        return test, snowboard.executor.run_concurrent(
            [test.writer, test.reader],
            scheduler=scheduler,
            race_detector=RaceDetector(),
        )

    def test_concurrent_trial_trace_bit_identical(self, snowboard):
        _, result = self.run_trial0(snowboard)
        rows = trace_rows(result.accesses)
        assert len(rows) == TRIAL0_ACCESSES
        assert result.switch_points == TRIAL0_SWITCH_POINTS
        assert digest(rows) == TRIAL0_DIGEST

    def test_replay_reproduces_trial_trace(self, snowboard):
        test, result = self.run_trial0(snowboard)
        replayed = snowboard.executor.run_concurrent(
            [test.writer, test.reader],
            replay_switch_points=result.switch_points,
        )
        assert trace_rows(replayed.accesses) == trace_rows(result.accesses)
        assert replayed.switch_points == result.switch_points
        assert replayed.instructions == result.instructions

    def test_sequential_trace_bit_identical(self, snowboard):
        program = snowboard.corpus.entries[0].program
        result = snowboard.executor.run_sequential(program)
        rows = trace_rows(result.accesses)
        assert len(rows) == SEQUENTIAL_ACCESSES
        assert digest(rows) == SEQUENTIAL_DIGEST

    def test_trace_views_agree(self, snowboard):
        """The columnar trace's lazy rows and raw fields are one dataset."""
        program = snowboard.corpus.entries[0].program
        result = snowboard.executor.run_sequential(program)
        trace = result.accesses
        assert list(trace.iter_fields()) == [
            (a.seq, a.thread, a.type, a.addr, a.size, a.value, a.ins, a.is_stack)
            for a in trace
        ]
        assert len(trace) == len(list(trace))
        assert trace_rows([trace[0], trace[-1]]) == trace_rows(
            [list(trace)[0], list(trace)[-1]]
        )
        assert trace_rows(trace[:3]) == trace_rows(list(trace)[:3])
