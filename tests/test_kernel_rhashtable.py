"""Tests for the rhashtable library, including the planted double fetch."""

import pytest

from repro.fuzz.prog import Call, prog
from repro.kernel import rhashtable as rht
from repro.kernel.kernel import boot_kernel
from repro.sched.executor import Executor


@pytest.fixture()
def k():
    kernel, _ = boot_kernel()
    kernel.table = kernel.static_alloc("test_rht", rht.RHT_TABLE.size)
    return kernel


def insert(k, key):
    ctx = k.make_context(0)
    entry = k.boot_run(k.allocator.kzalloc(ctx, rht.RHT_ENTRY.size + 16))
    k.boot_run(rht.rht_insert(ctx, k.table, entry, key))
    return entry


class TestBasicOperations:
    def test_lookup_missing_returns_zero(self, k):
        ctx = k.make_context(0)
        assert k.boot_run(rht.rht_lookup(ctx, k.table, 3)) == 0

    def test_insert_then_lookup(self, k):
        ctx = k.make_context(0)
        entry = insert(k, 3)
        assert k.boot_run(rht.rht_lookup(ctx, k.table, 3)) == entry

    def test_chained_bucket(self, k):
        """Keys 1 and 5 collide (NBUCKETS=4); both must be findable."""
        ctx = k.make_context(0)
        e1 = insert(k, 1)
        e5 = insert(k, 5)
        assert k.boot_run(rht.rht_lookup(ctx, k.table, 1)) == e1
        assert k.boot_run(rht.rht_lookup(ctx, k.table, 5)) == e5

    def test_remove_head(self, k):
        ctx = k.make_context(0)
        insert(k, 2)
        removed = k.boot_run(rht.rht_remove(ctx, k.table, 2))
        assert removed != 0
        assert k.boot_run(rht.rht_lookup(ctx, k.table, 2)) == 0
        assert k.machine.memory.read_int(rht.bucket_addr(k.table, 2), 8) == 0

    def test_remove_middle_of_chain(self, k):
        ctx = k.make_context(0)
        e1 = insert(k, 1)
        insert(k, 5)  # becomes the head; e1 is now mid-chain
        assert k.boot_run(rht.rht_remove(ctx, k.table, 1)) == e1
        assert k.boot_run(rht.rht_lookup(ctx, k.table, 5)) != 0
        assert k.boot_run(rht.rht_lookup(ctx, k.table, 1)) == 0

    def test_remove_missing_returns_zero(self, k):
        ctx = k.make_context(0)
        assert k.boot_run(rht.rht_remove(ctx, k.table, 7)) == 0


class TestDoubleFetch:
    def test_sequential_lookup_reads_bucket_twice(self, k):
        """The two fetches of rht_ptr are distinct instructions."""
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        result = executor.run_sequential(prog(Call("msgget", (2,)), Call("msgget", (2,))))
        fetches = [a for a in result.accesses if "rht_ptr" in a.ins and a.is_read]
        ins = {a.ins for a in fetches}
        assert len(ins) == 2  # fetch-1 and fetch-2 are separate instructions

    def test_forced_schedule_null_derefs(self):
        """Writer nulls the bucket between the reader's two fetches."""
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        writer = prog(Call("msgget", (2,)), Call("msgctl", (2, 0)))
        reader = prog(Call("msgget", (2,)))

        class ForceDoubleFetch:
            def __init__(self):
                self.done = set()

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                if (
                    access.thread == 0
                    and "rht_insert" in access.ins
                    and access.is_write
                    and access.size == 8
                    and access.addr == rht.bucket_addr(kernel.subsystems["ipc"].table, 2)
                    and "a" not in self.done
                ):
                    self.done.add("a")
                    return True
                if access.thread == 1 and "rht_ptr" in access.ins and "b" not in self.done:
                    self.done.add("b")
                    return True
                return False

        result = executor.run_concurrent([writer, reader], scheduler=ForceDoubleFetch())
        assert result.panicked
        assert "NULL pointer dereference" in result.panic_message
        assert "rht_lookup" in result.panic_message

    def test_profile_marks_df_leader(self):
        """Sequential profiling marks the first fetch as a double-fetch leader."""
        from repro.profile.profiler import profile_from_result

        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        # msgget on an existing key does lookup with two equal fetches.
        program = prog(Call("msgget", (2,)), Call("msgget", (2,)))
        profile = profile_from_result(0, program, executor.run_sequential(program))
        leaders = [a for a in profile.accesses if a.df_leader]
        assert any("rht_ptr" in a.ins for a in leaders)
