"""Tests for the rendered reports."""


from repro.detect.catalog import BUG_CATALOG
from repro.orchestrate.reporting import (
    merge_found,
    render_table2,
    render_table3,
    render_throughput,
)
from repro.orchestrate.results import CampaignResult


def campaign_with(strategy: str, bugs: dict) -> CampaignResult:
    campaign = CampaignResult(strategy=strategy, exemplar_pmcs=10)
    campaign.tested_pmcs = 5
    campaign.trials = 50
    # Inject found bugs directly through records to avoid re-matching.
    from repro.detect.console import ConsoleFinding
    from repro.detect.report import BugObservation
    from repro.orchestrate.results import ObservationRecord

    for bug_id, at in bugs.items():
        obs = BugObservation(
            kind="console", console=ConsoleFinding("panic", f"fake {bug_id}")
        )
        record = ObservationRecord(observation=obs, test_index=at, trial=0)
        record.bug_id = bug_id
        campaign.records.append(record)
    return campaign


class TestRenderTable2:
    def test_every_catalog_row_present(self):
        text = render_table2({})
        for spec in BUG_CATALOG:
            assert spec.id in text

    def test_found_bug_shows_method_and_position(self):
        text = render_table2({"SB12": ("S-INS", 11)})
        line = next(l for l in text.splitlines() if l.startswith("SB12"))
        assert "S-INS" in line and "11" in line

    def test_missing_bug_shows_dash(self):
        text = render_table2({})
        line = next(l for l in text.splitlines() if l.startswith("SB01"))
        assert " - " in line or line.rstrip().endswith("-") or "-" in line.split()

    def test_markdown_mode(self):
        text = render_table2({"SB01": ("S-MEM", 3)}, markdown=True)
        assert text.startswith("| ID |")
        assert "|---|" in text.replace(" ", "")


class TestRenderTable3:
    def test_rows_in_order(self):
        campaigns = [
            campaign_with("S-INS", {"SB13": 0}),
            campaign_with("Random pairing", {}),
        ]
        campaigns[1].exemplar_pmcs = 0
        text = render_table3(campaigns)
        lines = text.splitlines()
        assert "S-INS" in lines[2]
        assert "Random pairing" in lines[3]
        assert "NA" in lines[3]

    def test_issue_list_rendered(self):
        text = render_table3([campaign_with("S-INS", {"SB13": 0, "SB15": 4})])
        assert "SB13 (@0)" in text
        assert "SB15 (@4)" in text

    def test_markdown_table3(self):
        text = render_table3([campaign_with("S-CH", {})], markdown=True)
        assert text.startswith("| Method |")


class TestMergeFound:
    def test_earliest_finder_wins(self):
        a = campaign_with("S-INS", {"SB13": 5})
        b = campaign_with("S-MEM", {"SB13": 2})
        merged = merge_found([a, b])
        assert merged["SB13"] == ("S-MEM", 2)

    def test_union_of_bugs(self):
        a = campaign_with("S-INS", {"SB13": 5})
        b = campaign_with("S-MEM", {"SB15": 2})
        merged = merge_found([a, b])
        assert set(merged) == {"SB13", "SB15"}


class TestRenderThroughput:
    def _campaign(self):
        campaign = campaign_with("S-INS", {})
        campaign.workers = 4
        campaign.pages_restored = 250
        campaign.restore_seconds = 0.5
        campaign.wall_seconds = 10.0
        campaign.task_failures = 1
        return campaign

    def test_throughput_row_contents(self):
        campaign = self._campaign()
        text = render_throughput([campaign])
        line = next(l for l in text.splitlines() if l.startswith("S-INS"))
        assert "4" in line  # workers
        assert "300" in line  # 50 trials / 10 s * 60 = 300 exec/min
        assert "5.0" in line  # 250 pages / 50 trials
        assert "5.0%" in line  # 0.5 s restore / 10 s wall
        assert "1" in line  # task failures

    def test_markdown_throughput(self):
        text = render_throughput([self._campaign()], markdown=True)
        assert text.startswith("| Method |")

    def test_derived_metrics_handle_empty_campaign(self):
        campaign = CampaignResult(strategy="empty")
        assert campaign.trials_per_second == 0.0
        assert campaign.executions_per_minute == 0.0
        assert campaign.pages_per_trial == 0.0
        assert campaign.restore_fraction == 0.0
        assert "empty" in render_throughput([campaign])
