"""Dirty-page snapshot restore: equivalence with full-copy restore.

The per-trial reset is the dominant cost term of concurrent-test
execution (section 5.4), so ``Snapshot.restore`` copies back only the
pages dirtied since the last restore.  These tests pin the correctness
contract: incremental restore is byte-identical to a full restore — for
raw machines, for full kernel executions, and for bit-exact schedule
replay — and silently falls back to a full copy whenever the tracked
history is invalid.
"""

from __future__ import annotations

import random


from repro.fuzz.prog import Call, Res, prog
from repro.kernel.kernel import boot_kernel
from repro.machine.machine import Machine
from repro.machine.snapshot import Snapshot
from repro.sched.executor import Executor
from repro.sched.random_sched import RandomScheduler


class TestMachineLevel:
    def test_first_restore_is_full_copy(self):
        machine = Machine()
        snap = Snapshot.capture(machine)
        assert snap.restore(machine) == len(snap.pages)

    def test_repeated_restore_is_incremental(self):
        machine = Machine()
        snap = Snapshot.capture(machine)
        snap.restore(machine)
        machine.memory.write_int(machine.regions.heap_base, 8, 7)
        assert snap.restore(machine) == 1

    def test_incremental_restore_matches_full_state(self):
        machine = Machine()
        machine.printk("boot")
        machine.memory.write_bytes(machine.regions.globals_base, b"fixed")
        snap = Snapshot.capture(machine)
        snap.restore(machine)  # arm incremental tracking

        rng = random.Random(11)
        for _ in range(40):
            addr = machine.regions.heap_base + rng.randrange(0, 64 * 1024)
            machine.memory.write_bytes(addr, rng.randbytes(rng.randrange(1, 32)))
            machine.printk("noise")
        restored = snap.restore(machine)

        assert 0 < restored < len(snap.pages)
        assert machine.memory.clone_pages() == snap.pages
        assert machine.console == ["boot"]

    def test_restoring_other_snapshot_falls_back_to_full(self):
        machine = Machine()
        snap_a = Snapshot.capture(machine, label="a")
        machine.memory.write_int(machine.regions.heap_base, 8, 1)
        snap_b = Snapshot.capture(machine, label="b")
        snap_a.restore(machine)
        assert snap_b.restore(machine) == len(snap_b.pages)
        assert machine.memory.read_int(machine.regions.heap_base, 8) == 1

    def test_wholesale_page_replacement_invalidates_tracking(self):
        machine = Machine()
        snap = Snapshot.capture(machine)
        snap.restore(machine)
        # A direct restore_pages bypasses Snapshot bookkeeping; the epoch
        # bump must force the next restore back onto the full-copy path.
        machine.memory.restore_pages(machine.memory.clone_pages())
        assert snap.restore(machine) == len(snap.pages)

    def test_explicit_invalidation_forces_full_copy(self):
        machine = Machine()
        snap = Snapshot.capture(machine)
        snap.restore(machine)
        machine.invalidate_restore_tracking()
        assert snap.restore(machine) == len(snap.pages)


class TestKernelLevel:
    """Equivalence over real kernel executions (the executor path)."""

    WRITER = prog(Call("socket", (2,)), Call("connect", (Res(0), 1)))
    READER = prog(
        Call("socket", (2,)), Call("connect", (Res(0), 1)), Call("sendmsg", (Res(0), 5))
    )

    def _trial_fingerprint(self, result):
        return (
            [(a.seq, a.thread, a.type, a.addr, a.size, a.value, a.ins) for a in result.accesses],
            result.console,
            result.returns,
            result.panic_message,
            result.switch_points,
        )

    def test_incremental_and_full_restore_trials_are_bit_identical(self):
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)

        def run_trials():
            fingerprints = []
            for trial in range(6):
                scheduler_local = RandomScheduler(seed=5)
                scheduler_local.begin_trial(trial)
                result = executor.run_concurrent(
                    [self.WRITER, self.READER], scheduler=scheduler_local
                )
                fingerprints.append(self._trial_fingerprint(result))
            return fingerprints

        executor.full_restore = True
        full = run_trials()
        executor.full_restore = False
        incremental = run_trials()
        assert incremental == full

    def test_trials_after_many_restores_stay_deterministic(self):
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        first = executor.run_concurrent(
            [self.WRITER, self.READER], scheduler=RandomScheduler(seed=9)
        )
        for _ in range(5):
            executor.run_sequential(self.READER)  # dirty + restore repeatedly
        again = executor.run_concurrent(
            [self.WRITER, self.READER], scheduler=RandomScheduler(seed=9)
        )
        assert self._trial_fingerprint(again) == self._trial_fingerprint(first)

    def test_replay_stays_bit_exact_across_incremental_restores(self):
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        scheduler = RandomScheduler(seed=3)
        scheduler.begin_trial(0)
        original = executor.run_concurrent(
            [self.WRITER, self.READER], scheduler=scheduler
        )
        # Intervening executions dirty and incrementally restore the
        # machine; the replay afterwards must still match bit for bit.
        for _ in range(4):
            executor.run_sequential(self.WRITER)
        replayed = executor.run_concurrent(
            [self.WRITER, self.READER],
            replay_switch_points=original.switch_points,
        )
        assert self._trial_fingerprint(replayed) == self._trial_fingerprint(original)

    def test_second_trial_restores_few_pages(self):
        kernel, snapshot = boot_kernel()
        executor = Executor(kernel, snapshot)
        first = executor.run_sequential(self.WRITER)
        second = executor.run_sequential(self.WRITER)
        assert first.pages_restored == len(snapshot.pages)
        assert 0 < second.pages_restored < len(snapshot.pages) // 10
