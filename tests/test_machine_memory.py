"""Unit tests for the sparse paged memory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.memory import PAGE_SIZE, Memory, PageFault

BASE = 0x10_0000


def make_memory(size=4 * PAGE_SIZE) -> Memory:
    memory = Memory()
    memory.map_region(BASE, size)
    return memory


class TestMapping:
    def test_mapped_region_reads_zero(self):
        memory = make_memory()
        assert memory.read_bytes(BASE, 16) == b"\x00" * 16

    def test_unmapped_read_faults(self):
        memory = make_memory()
        with pytest.raises(PageFault):
            memory.read_bytes(BASE - PAGE_SIZE, 1)

    def test_unmapped_write_faults_and_reports_write(self):
        memory = make_memory()
        with pytest.raises(PageFault) as excinfo:
            memory.write_bytes(0x9999_0000, b"x")
        assert excinfo.value.write is True

    def test_null_page_never_mappable(self):
        memory = Memory()
        with pytest.raises(ValueError):
            memory.map_region(0, PAGE_SIZE)

    def test_null_read_faults(self):
        memory = make_memory()
        with pytest.raises(PageFault) as excinfo:
            memory.read_bytes(0, 8)
        assert excinfo.value.addr == 0

    def test_negative_address_is_unmapped(self):
        memory = make_memory()
        assert not memory.is_mapped(-8, 8)

    def test_remap_is_idempotent(self):
        memory = make_memory()
        memory.write_bytes(BASE, b"hello")
        memory.map_region(BASE, PAGE_SIZE)  # must not clear contents
        assert memory.read_bytes(BASE, 5) == b"hello"

    def test_is_mapped_spanning_boundary(self):
        memory = make_memory(2 * PAGE_SIZE)
        assert memory.is_mapped(BASE + PAGE_SIZE - 4, 8)
        assert not memory.is_mapped(BASE + 2 * PAGE_SIZE - 4, 8)

    def test_zero_size_access_rejected(self):
        memory = make_memory()
        with pytest.raises(ValueError):
            memory.read_int(BASE, 0)

    def test_zero_size_region_rejected(self):
        # Regression: size <= 0 used to silently map nothing, leaving the
        # caller's region registry lying about what is mapped.
        memory = Memory()
        with pytest.raises(ValueError):
            memory.map_region(BASE, 0)

    def test_negative_size_region_rejected(self):
        memory = Memory()
        with pytest.raises(ValueError):
            memory.map_region(BASE, -PAGE_SIZE)


class TestByteAccess:
    def test_roundtrip(self):
        memory = make_memory()
        memory.write_bytes(BASE + 10, b"\x01\x02\x03")
        assert memory.read_bytes(BASE + 10, 3) == b"\x01\x02\x03"

    def test_write_spanning_pages(self):
        memory = make_memory()
        addr = BASE + PAGE_SIZE - 2
        memory.write_bytes(addr, b"ABCD")
        assert memory.read_bytes(addr, 4) == b"ABCD"

    def test_int_roundtrip_little_endian(self):
        memory = make_memory()
        memory.write_int(BASE, 4, 0x11223344)
        assert memory.read_bytes(BASE, 4) == b"\x44\x33\x22\x11"
        assert memory.read_int(BASE, 4) == 0x11223344

    def test_int_write_masks_overflow(self):
        memory = make_memory()
        memory.write_int(BASE, 2, 0x1FFFF)
        assert memory.read_int(BASE, 2) == 0xFFFF

    def test_adjacent_writes_do_not_clobber(self):
        memory = make_memory()
        memory.write_int(BASE, 4, 0xAAAAAAAA)
        memory.write_int(BASE + 4, 4, 0xBBBBBBBB)
        assert memory.read_int(BASE, 4) == 0xAAAAAAAA
        assert memory.read_int(BASE + 4, 4) == 0xBBBBBBBB


class TestSnapshotSupport:
    def test_clone_then_mutate_then_restore(self):
        memory = make_memory()
        memory.write_int(BASE, 8, 123)
        pages = memory.clone_pages()
        memory.write_int(BASE, 8, 456)
        memory.restore_pages(pages)
        assert memory.read_int(BASE, 8) == 123

    def test_clone_is_immutable_copy(self):
        memory = make_memory()
        pages = memory.clone_pages()
        memory.write_int(BASE, 8, 7)
        fresh = Memory()
        fresh.restore_pages(pages)
        assert fresh.read_int(BASE, 8) == 0

    def test_mapped_bytes_accounting(self):
        memory = make_memory(3 * PAGE_SIZE)
        assert memory.mapped_bytes == 3 * PAGE_SIZE


class TestDirtyTracking:
    def test_write_marks_page_dirty(self):
        memory = make_memory()
        memory.clear_dirty()
        memory.write_bytes(BASE + PAGE_SIZE + 5, b"xy")
        assert memory.dirty_pages() == {(BASE + PAGE_SIZE) // PAGE_SIZE}

    def test_write_spanning_pages_marks_both(self):
        memory = make_memory()
        memory.clear_dirty()
        memory.write_bytes(BASE + PAGE_SIZE - 1, b"ab")
        first = BASE // PAGE_SIZE
        assert memory.dirty_pages() == {first, first + 1}

    def test_map_region_marks_new_pages_dirty_but_not_remaps(self):
        memory = make_memory()
        memory.clear_dirty()
        memory.map_region(BASE, PAGE_SIZE)  # already mapped: no-op
        assert memory.dirty_pages() == set()
        memory.map_region(BASE + 8 * PAGE_SIZE, PAGE_SIZE)
        assert memory.dirty_pages() == {BASE // PAGE_SIZE + 8}

    def test_clone_dirty_pages_subset(self):
        memory = make_memory()
        memory.clear_dirty()
        memory.write_bytes(BASE, b"hello")
        delta = memory.clone_dirty_pages()
        assert set(delta) == {BASE // PAGE_SIZE}
        assert delta[BASE // PAGE_SIZE][:5] == b"hello"

    def test_full_restore_clears_dirty_and_bumps_epoch(self):
        memory = make_memory()
        pages = memory.clone_pages()
        memory.write_bytes(BASE, b"x")
        epoch = memory.epoch
        memory.restore_pages(pages)
        assert memory.dirty_pages() == set()
        assert memory.epoch == epoch + 1

    def test_incremental_restore_reverts_dirty_pages(self):
        memory = make_memory()
        memory.write_int(BASE, 8, 123)
        pages = memory.clone_pages()
        memory.clear_dirty()
        memory.write_int(BASE, 8, 456)
        memory.write_int(BASE + 2 * PAGE_SIZE, 8, 789)
        restored = memory.restore_pages_incremental(pages)
        assert restored == 2
        assert memory.read_int(BASE, 8) == 123
        assert memory.read_int(BASE + 2 * PAGE_SIZE, 8) == 0
        assert memory.dirty_pages() == set()

    def test_incremental_restore_unmaps_pages_mapped_after_snapshot(self):
        memory = make_memory()
        pages = memory.clone_pages()
        memory.clear_dirty()
        extra = BASE + 16 * PAGE_SIZE
        memory.map_region(extra, PAGE_SIZE)
        memory.write_bytes(extra, b"late")
        memory.restore_pages_incremental(pages)
        assert not memory.is_mapped(extra)
        assert memory.clone_pages() == pages


class TestFastPathEdges:
    """The single-page fast paths must be invisible: page-straddling and
    unmapped ranges take the slow path with unchanged fault behaviour,
    and dirty tracking stays exact (snapshot restore depends on it)."""

    def test_int_roundtrip_spanning_pages(self):
        memory = make_memory()
        addr = BASE + PAGE_SIZE - 2
        memory.write_int(addr, 4, 0xAABBCCDD)
        assert memory.read_int(addr, 4) == 0xAABBCCDD
        # The bytes really landed across the boundary, little-endian.
        assert memory.read_bytes(addr, 4) == b"\xdd\xcc\xbb\xaa"

    def test_int_write_spanning_pages_masks_overflow(self):
        memory = make_memory()
        addr = BASE + PAGE_SIZE - 1
        memory.write_int(addr, 2, 0x1FFFF)
        assert memory.read_int(addr, 2) == 0xFFFF

    def test_access_ending_exactly_at_page_boundary(self):
        memory = make_memory()
        addr = BASE + PAGE_SIZE - 8
        memory.write_int(addr, 8, 0x0102030405060708)
        assert memory.read_int(addr, 8) == 0x0102030405060708

    def test_unmapped_single_page_probes_fault_with_slow_path_message(self):
        memory = make_memory()
        addr = BASE + 64 * PAGE_SIZE  # inside one page, but unmapped
        with pytest.raises(PageFault) as read_fault:
            memory.read_int(addr, 8)
        assert str(read_fault.value) == (
            f"page fault: read from unmapped address {addr:#x} (+8)"
        )
        with pytest.raises(PageFault) as write_fault:
            memory.write_int(addr, 8, 1)
        assert str(write_fault.value) == (
            f"page fault: write to unmapped address {addr:#x} (+8)"
        )
        assert read_fault.value.write is False
        assert write_fault.value.write is True

    def test_straddle_into_unmapped_page_faults(self):
        memory = make_memory(PAGE_SIZE)  # exactly one mapped page
        addr = BASE + PAGE_SIZE - 2
        with pytest.raises(PageFault) as excinfo:
            memory.read_int(addr, 4)
        assert excinfo.value.addr == addr
        assert excinfo.value.size == 4
        with pytest.raises(PageFault):
            memory.write_int(addr, 4, 0)
        # The failed straddling write must not mark anything dirty.
        memory.clear_dirty()
        with pytest.raises(PageFault):
            memory.write_bytes(addr, b"abcd")
        assert memory.dirty_pages() == set()

    def test_negative_address_faults(self):
        memory = make_memory()
        with pytest.raises(PageFault):
            memory.read_int(-8, 8)
        with pytest.raises(PageFault):
            memory.write_int(-8, 8, 1)

    def test_nonpositive_size_still_rejected(self):
        memory = make_memory()
        with pytest.raises(ValueError):
            memory.write_int(BASE, 0, 1)
        with pytest.raises(ValueError):
            memory.read_int(BASE, -1)

    def test_fast_write_marks_exactly_one_page_dirty(self):
        memory = make_memory()
        memory.clear_dirty()
        memory.write_int(BASE + 2 * PAGE_SIZE + 8, 8, 7)
        assert memory.dirty_pages() == {BASE // PAGE_SIZE + 2}

    def test_incremental_restore_reverts_fast_path_writes(self):
        # The fast write path bypasses _write_bytes_slow's dirty marking;
        # incremental restore is only sound if it still records the page.
        memory = make_memory()
        memory.write_int(BASE, 8, 111)
        pages = memory.clone_pages()
        memory.clear_dirty()
        memory.write_int(BASE, 8, 222)  # fast path
        memory.write_int(BASE + PAGE_SIZE - 2, 4, 333)  # straddling slow path
        restored = memory.restore_pages_incremental(pages)
        assert restored == 2
        assert memory.clone_pages() == pages


@given(
    offset=st.integers(min_value=0, max_value=2 * PAGE_SIZE),
    data=st.binary(min_size=1, max_size=64),
)
@settings(max_examples=60, deadline=None)
def test_property_roundtrip_any_offset(offset, data):
    """Writes of arbitrary bytes at arbitrary offsets read back intact."""
    memory = make_memory(4 * PAGE_SIZE)
    memory.write_bytes(BASE + offset, data)
    assert memory.read_bytes(BASE + offset, len(data)) == data


@given(
    size=st.integers(min_value=1, max_value=8),
    value=st.integers(min_value=0),
)
@settings(max_examples=60, deadline=None)
def test_property_int_roundtrip_masks_to_size(size, value):
    memory = make_memory()
    memory.write_int(BASE, size, value)
    assert memory.read_int(BASE, size) == value & ((1 << (8 * size)) - 1)


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4 * PAGE_SIZE - 64),
            st.binary(min_size=1, max_size=64),
        ),
        max_size=12,
    ),
)
@settings(max_examples=60, deadline=None)
def test_property_incremental_restore_matches_snapshot(writes):
    """After arbitrary dirty writes, an incremental restore yields memory
    byte-identical to the snapshot (same invariant as a full restore)."""
    memory = make_memory(4 * PAGE_SIZE)
    memory.write_bytes(BASE, b"snapshot state")
    pages = memory.clone_pages()
    memory.clear_dirty()
    for offset, data in writes:
        memory.write_bytes(BASE + offset, data)
    memory.restore_pages_incremental(pages)
    assert memory.clone_pages() == pages
