"""Tests for the serialised executor: tracing, switching, failure paths."""

import pytest

from repro.fuzz.prog import Call, Res, prog
from repro.kernel.kernel import boot_kernel
from repro.machine.snapshot import Snapshot
from repro.sched.executor import Executor
from repro.sched.random_sched import RandomScheduler


class TestSequentialExecution:
    def test_snapshot_restored_between_runs(self, executor):
        program = prog(Call("msgget", (1,)), Call("msgsnd", (1, 5)))
        first = executor.run_sequential(program)
        second = executor.run_sequential(program)
        assert first.returns == second.returns
        assert len(first.accesses) == len(second.accesses)

    def test_identical_runs_produce_identical_traces(self, executor):
        program = prog(Call("open", (1,)), Call("write", (Res(0), 3)))
        key = lambda a: (a.type, a.addr, a.size, a.value, a.ins)  # noqa: E731
        t1 = [key(a) for a in executor.run_sequential(program).accesses]
        t2 = [key(a) for a in executor.run_sequential(program).accesses]
        assert t1 == t2

    def test_sequence_numbers_are_monotonic(self, executor):
        result = executor.run_sequential(prog(Call("msgget", (1,))))
        seqs = [a.seq for a in result.accesses]
        assert seqs == sorted(seqs)

    def test_stack_accesses_are_flagged(self):
        kernel, _ = boot_kernel()
        stack_cell = None

        def sys_stacky(ctx):
            nonlocal stack_cell
            stack_cell = ctx.stack_alloc(8)
            yield from ctx.store_word(stack_cell, 42)
            value = yield from ctx.load_word(stack_cell)
            return value

        kernel.register_syscall("stacky", sys_stacky)
        snapshot = Snapshot.capture(kernel.machine)
        executor = Executor(kernel, snapshot)
        result = executor.run_sequential(prog(Call("stacky", ())))
        assert result.returns[0] == [42]
        stack_accesses = [a for a in result.accesses if a.is_stack]
        assert len(stack_accesses) == 2
        assert all(a.addr == stack_cell for a in stack_accesses)
        assert result.shared_accesses() == [a for a in result.accesses if not a.is_stack]

    def test_console_capture_only_new_lines(self, executor):
        result = executor.run_sequential(prog(Call("open", (1,))))
        assert "mini-kernel booted" not in result.console


class TestConcurrentExecution:
    def test_both_threads_complete(self, executor):
        a = prog(Call("msgget", (1,)))
        b = prog(Call("open", (1,)), Call("read", (Res(0), 1)))
        result = executor.run_concurrent([a, b], scheduler=RandomScheduler(seed=1))
        assert result.completed
        assert result.returns[0] == [1]
        assert result.returns[1] == [0, 0x1001]

    def test_threads_use_separate_processes(self, executor):
        """fds are per-process: both threads get fd 0."""
        a = prog(Call("open", (1,)))
        result = executor.run_concurrent([a, a], scheduler=RandomScheduler(seed=2))
        assert result.returns[0] == [0]
        assert result.returns[1] == [0]

    def test_switch_counter(self, executor):
        a = prog(Call("msgget", (1,)), Call("msgsnd", (1, 2)))
        result = executor.run_concurrent(
            [a, a], scheduler=RandomScheduler(seed=3, switch_probability=1.0)
        )
        assert result.switches > 0

    def test_no_scheduler_runs_threads_back_to_back(self, executor):
        a = prog(Call("msgget", (1,)))
        result = executor.run_concurrent([a, a], scheduler=None)
        threads = [a.thread for a in result.accesses]
        # Without a scheduler, thread 0 finishes before thread 1 starts.
        boundary = threads.index(1)
        assert all(t == 1 for t in threads[boundary:])

    def test_concurrent_requires_two_programs(self, executor):
        with pytest.raises(ValueError):
            executor.run_concurrent([prog(Call("open", (1,)))])

    def test_determinism_same_seed(self, executor):
        a = prog(Call("msgget", (2,)), Call("msgctl", (2, 0)))
        b = prog(Call("msgget", (2,)))
        r1 = executor.run_concurrent([a, b], scheduler=RandomScheduler(seed=9))
        r2 = executor.run_concurrent([a, b], scheduler=RandomScheduler(seed=9))
        assert [x.value for x in r1.accesses] == [x.value for x in r2.accesses]
        assert r1.switches == r2.switches


class TestFailurePaths:
    def test_explicit_panic_stops_execution(self):
        kernel, _ = boot_kernel()

        def sys_die(ctx):
            yield from ctx.panic("deliberate")
            yield from ctx.printk("unreachable")

        kernel.register_syscall("die", sys_die)
        snapshot = Snapshot.capture(kernel.machine)
        executor = Executor(kernel, snapshot)
        result = executor.run_sequential(prog(Call("die", ())))
        assert result.panicked
        assert result.panic_message == "deliberate"
        assert not any("unreachable" in line for line in result.console)
        assert any("Kernel panic" in line for line in result.console)

    def test_null_deref_reports_rip(self):
        kernel, _ = boot_kernel()

        def sys_nullread(ctx):
            value = yield from ctx.load_word(8)
            return value

        kernel.register_syscall("nullread", sys_nullread)
        snapshot = Snapshot.capture(kernel.machine)
        executor = Executor(kernel, snapshot)
        result = executor.run_sequential(prog(Call("nullread", ())))
        assert result.panicked
        assert "NULL pointer dereference" in result.panic_message
        assert "sys_nullread" in result.panic_message

    def test_wild_pointer_reports_page_fault(self):
        kernel, _ = boot_kernel()

        def sys_wild(ctx):
            value = yield from ctx.load_word(0x5555_0000)
            return value

        kernel.register_syscall("wild", sys_wild)
        snapshot = Snapshot.capture(kernel.machine)
        executor = Executor(kernel, snapshot)
        result = executor.run_sequential(prog(Call("wild", ())))
        assert "unable to handle page fault" in result.panic_message

    def test_instruction_budget(self):
        kernel, _ = boot_kernel()

        def sys_spin_forever(ctx):
            while True:
                yield from ctx.load_word(kernel.globals["kmalloc_state"])

        kernel.register_syscall("spin_forever", sys_spin_forever)
        snapshot = Snapshot.capture(kernel.machine)
        executor = Executor(kernel, snapshot, max_instructions=500)
        result = executor.run_sequential(prog(Call("spin_forever", ())))
        assert result.budget_exceeded
        assert result.instructions <= 501

    def test_deadlock_detection_two_spinners(self):
        """Both threads spin on locks the other holds -> deadlock report."""
        kernel, _ = boot_kernel()
        from repro.kernel import sync

        lock_a = kernel.static_alloc("dl_a", 4)
        lock_b = kernel.static_alloc("dl_b", 4)

        def sys_ab(ctx):
            yield from sync.spin_lock(ctx, lock_a)
            yield from sync.spin_lock(ctx, lock_b)
            return 0

        def sys_ba(ctx):
            yield from sync.spin_lock(ctx, lock_b)
            yield from sync.spin_lock(ctx, lock_a)
            return 0

        kernel.register_syscall("ab", sys_ab)
        kernel.register_syscall("ba", sys_ba)
        snapshot = Snapshot.capture(kernel.machine)
        executor = Executor(kernel, snapshot)

        class AfterFirstLock:
            """Switch each thread right after it takes its first lock."""

            def begin_trial(self, t):
                pass

            def end_trial(self, r):
                pass

            def on_access(self, access):
                return access.is_write and access.size == 4 and access.value in (1, 2)

        result = executor.run_concurrent(
            [prog(Call("ab", ())), prog(Call("ba", ()))], scheduler=AfterFirstLock()
        )
        assert result.deadlocked
        assert not result.completed
