#!/usr/bin/env python
"""CI smoke: kill-and-resume a pruned + prefix-memoized campaign.

The two trial-side optimisations (sequential-prefix fork memoization and
commuting-schedule pruning, DESIGN §2.15) must compose with the
checkpoint journal: a campaign running with both enabled is killed
mid-flight and resumed, and the resumed summary must be bit-identical
to an uninterrupted pruned run.  The smoke also pins the optimisation
contract end to end: the pruned campaign runs strictly fewer trials
than an unpruned reference while reporting the same bugs and the same
observation count.

Usage:
    python scripts/smoke_trial_memo.py [CHECKPOINT_PATH]
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.orchestrate.pipeline import Snowboard, SnowboardConfig  # noqa: E402

# trials_per_pmc is above the pruning floor so commuting classes bite.
CONFIG = SnowboardConfig(
    seed=7, corpus_budget=120, trials_per_pmc=24, prune_commuting=True
)
BASELINE_CONFIG = SnowboardConfig(
    seed=7, corpus_budget=120, trials_per_pmc=24, prefix_fork=False
)
BUDGET = 10


class Killed(BaseException):
    """Stands in for SIGKILL: not an Exception, so nothing catches it."""


def run_until_killed(path: str, kill_after: int) -> None:
    """Start the campaign, 'crash' after ``kill_after`` Stage-4 tasks."""
    sb = Snowboard(CONFIG)
    executed = 0
    real = sb.execute_test

    def dying_execute_test(*args, **kwargs):
        nonlocal executed
        if executed >= kill_after:
            raise Killed()
        executed += 1
        return real(*args, **kwargs)

    sb.execute_test = dying_execute_test
    try:
        sb.run_campaign("S-INS-PAIR", test_budget=BUDGET, checkpoint_path=path)
    except Killed:
        return
    raise AssertionError("campaign finished before the injected kill")


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "smoke_trial_memo_checkpoint.jsonl"
    if os.path.exists(path):
        os.remove(path)

    # Unpruned, unmemoized reference: the yield pruning must preserve.
    baseline = Snowboard(BASELINE_CONFIG).run_campaign(
        "S-INS-PAIR", test_budget=BUDGET
    )
    # Uninterrupted pruned + memoized run: the summary resume must match.
    expected = Snowboard(CONFIG).run_campaign("S-INS-PAIR", test_budget=BUDGET)

    if expected.trials >= baseline.trials:
        print(
            f"smoke_trial_memo: FAILED — pruning did not prune "
            f"({expected.trials} vs {baseline.trials} trials)"
        )
        return 1
    if expected.summary()["bugs"] != baseline.summary()["bugs"]:
        print("smoke_trial_memo: FAILED — pruning lost bugs")
        print(f"  baseline: {baseline.summary()['bugs']}")
        print(f"  pruned:   {expected.summary()['bugs']}")
        return 1
    if expected.summary()["observations"] != baseline.summary()["observations"]:
        print("smoke_trial_memo: FAILED — pruning lost observations")
        return 1

    run_until_killed(path, kill_after=BUDGET // 2)

    resumed = Snowboard(CONFIG).run_campaign(
        "S-INS-PAIR", test_budget=BUDGET, checkpoint_path=path, resume=True
    )
    if resumed.summary() != expected.summary():
        print("smoke_trial_memo: FAILED — resumed summary diverged")
        print(f"  expected: {expected.summary()}")
        print(f"  resumed:  {resumed.summary()}")
        return 1

    print(
        f"smoke_trial_memo: green — pruned {baseline.trials} -> "
        f"{expected.trials} trials with identical bugs "
        f"{expected.summary()['bugs']}, killed after {BUDGET // 2} tasks, "
        f"resumed to an identical summary (journal={path})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
