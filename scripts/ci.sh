#!/usr/bin/env bash
# The full CI pipeline, runnable offline on a bare checkout:
#
#     scripts/ci.sh [LEG]
#
# LEG selects which slice runs (GitHub Actions runs the legs as parallel
# jobs; local runs default to `all`):
#
#   lint    — step 0 only
#   tests   — steps 1-2 (tier-1 + the -O pass)
#   smokes  — steps 3-8 (CLI smoke + every kill-and-resume smoke)
#   perf    — step 9 (the bench gate, unconditionally)
#   all     — steps 0-8, plus step 9 when PERF=1 (the default)
#
#  0. lint       — ruff over src/tests/benchmarks/scripts.  Missing ruff
#                  is a warn-and-skip locally but a hard failure when
#                  CI=true (a lint job that silently skips linting is
#                  worse than none).
#  1. tier-1     — the normal pytest run (full assertion checking).  When
#                  pytest-cov is available the same run also enforces the
#                  coverage floor (--cov=repro --cov-fail-under=80), so
#                  coverage costs no extra suite pass; without pytest-cov
#                  the run degrades to plain pytest — warn locally,
#                  hard failure when CI=true.
#  2. tier-1 -O  — the same suite under `python -O`, which strips every
#                  `assert` statement from the *source tree*.  Pass 2
#                  exists to catch code that leans on asserts for control
#                  flow or invariant enforcement — e.g. the old
#                  `assert task_id == index` in execute_tests_parallel,
#                  which under -O silently mis-seeded every task from a
#                  pre-seeded queue.  Test-module asserts are also
#                  stripped in pass 2 (pytest warns about this), so it
#                  only detects crashes/exceptions; pass 1 remains the
#                  source of truth for behavioural assertions.
#  3. smoke      — one tiny parallel campaign through the installed CLI
#                  (`python -m repro`) with --checkpoint and --trace-out,
#                  then `repro stats` over the trace.  Artifacts land in
#                  $ARTIFACTS_DIR (default: artifacts/) for CI upload.
#  4. smoke-inc  — kill-and-resume smoke for the round-based engine
#                  (scripts/smoke_incremental.py): a 2-round checkpointed
#                  campaign is killed after round 1, resumed, and the
#                  resumed summary must be bit-identical to an
#                  uninterrupted run.
#  5. smoke-fleet — the worker fleets under fire
#                  (scripts/smoke_fleet.py): a process worker SIGKILLs
#                  itself mid-task, a socket worker does the same (its
#                  death visible only through the missed-heartbeat
#                  deadline), then a checkpointed process-fleet campaign
#                  is killed and resumed; all must land bit-identical
#                  to serial.  Two CLI campaigns then run
#                  --fleet processes --checkpoint-fsync and
#                  --fleet sockets end to end.
#  6. smoke-store — kill-and-resume for the out-of-core PMC store
#                  (scripts/smoke_store.py): a tiny campaign spilled to
#                  segment files with the hot tier forced to 1/10 of the
#                  access set is killed mid-round, then resumed from the
#                  journal and the store manifest bit-identically.
#  7. smoke-memo — kill-and-resume for the pruned + prefix-memoized
#                  trial path (scripts/smoke_trial_memo.py): a campaign
#                  with --prune-commuting and prefix forking on is
#                  checked for yield preservation against an unoptimised
#                  reference, killed mid-campaign, and resumed to a
#                  bit-identical summary.
#  8. smoke-service — SIGKILL the multi-tenant campaign daemon
#                  (scripts/smoke_service.py): two tenants' jobs are
#                  submitted over the HTTP API, the daemon is SIGKILLed
#                  mid-campaign and restarted on the same data dir, and
#                  both final summaries must be bit-identical to solo
#                  run_rounds campaigns.
#  9. perf gate  — leg `perf` (or PERF=1 with `all`): the quick-mode
#                  hot-path, incremental-engine, fleet, PMC-store and
#                  trial-memo benchmarks fail on a >20% regression
#                  against the baselines in BENCH_hot_path.json /
#                  BENCH_incremental.json / BENCH_fleet.json /
#                  BENCH_pmc_store.json / BENCH_trial_memo.json; the
#                  updated trajectory JSONs are copied into
#                  $ARTIFACTS_DIR.
set -euo pipefail
cd "$(dirname "$0")/.."

LEG="${1:-all}"
case "$LEG" in
    lint|tests|smokes|perf|all) ;;
    *)
        echo "usage: scripts/ci.sh [lint|tests|smokes|perf|all]" >&2
        exit 2
        ;;
esac

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
ARTIFACTS_DIR="${ARTIFACTS_DIR:-artifacts}"
mkdir -p "$ARTIFACTS_DIR"

# Warn-and-skip is for bare local checkouts only: under CI=true a
# missing dev tool fails the leg instead of silently thinning it.
missing_tool() {
    local tool="$1" hint="$2"
    if [[ "${CI:-false}" == "true" ]]; then
        echo "error: $tool not installed but CI=true ($hint)" >&2
        exit 1
    fi
    echo "warning: $tool not installed, $hint"
}

if [[ "$LEG" == "lint" || "$LEG" == "all" ]]; then
    echo "== lint: ruff check =="
    if command -v ruff >/dev/null 2>&1; then
        ruff check src tests benchmarks scripts examples
    else
        missing_tool ruff "skipping lint (pip install -e '.[dev]')"
    fi
fi

if [[ "$LEG" == "tests" || "$LEG" == "all" ]]; then
    echo "== tier-1: python -m pytest =="
    if python -c "import pytest_cov" >/dev/null 2>&1; then
        python -m pytest -x -q --cov=repro --cov-fail-under=80 --cov-report=term
    else
        missing_tool pytest-cov "running without coverage floor"
        python -m pytest -x -q
    fi

    echo "== tier-1 under -O (assert-stripped invariant check) =="
    python -O -m pytest -x -q
fi

if [[ "$LEG" == "smokes" || "$LEG" == "all" ]]; then
    echo "== smoke: parallel campaign through the CLI =="
    SMOKE_TRACE="$ARTIFACTS_DIR/smoke_trace.jsonl"
    SMOKE_CHECKPOINT="$ARTIFACTS_DIR/smoke_checkpoint.jsonl"
    rm -f "$SMOKE_TRACE" "$SMOKE_CHECKPOINT"
    python -m repro campaign \
        --strategy S-INS-PAIR --budget 4 --trials 4 --seed 7 --corpus 120 \
        --workers 2 --prune-commuting \
        --checkpoint "$SMOKE_CHECKPOINT" --trace-out "$SMOKE_TRACE"
    python -m repro stats "$SMOKE_TRACE"

    echo "== smoke: round-based kill-and-resume =="
    python scripts/smoke_incremental.py "$ARTIFACTS_DIR/smoke_incremental_checkpoint.jsonl"

    echo "== smoke: worker fleets under fire =="
    python scripts/smoke_fleet.py "$ARTIFACTS_DIR/smoke_fleet_checkpoint.jsonl"
    FLEET_CHECKPOINT="$ARTIFACTS_DIR/smoke_fleet_cli_checkpoint.jsonl"
    rm -f "$FLEET_CHECKPOINT"
    python -m repro campaign \
        --strategy S-INS-PAIR --budget 4 --trials 4 --seed 7 --corpus 120 \
        --workers 2 --fleet processes \
        --checkpoint "$FLEET_CHECKPOINT" --checkpoint-fsync
    SOCKET_CHECKPOINT="$ARTIFACTS_DIR/smoke_socket_cli_checkpoint.jsonl"
    rm -f "$SOCKET_CHECKPOINT"
    python -m repro campaign \
        --strategy S-INS-PAIR --budget 4 --trials 4 --seed 7 --corpus 120 \
        --workers 2 --fleet sockets \
        --checkpoint "$SOCKET_CHECKPOINT"

    echo "== smoke: spilled PMC store kill-and-resume =="
    python scripts/smoke_store.py "$ARTIFACTS_DIR/smoke_store_work"

    echo "== smoke: pruned + memoized trial path kill-and-resume =="
    python scripts/smoke_trial_memo.py "$ARTIFACTS_DIR/smoke_trial_memo_checkpoint.jsonl"

    echo "== smoke: campaign service daemon SIGKILL + restart =="
    python scripts/smoke_service.py "$ARTIFACTS_DIR/smoke_service_data"
fi

if [[ "$LEG" == "perf" || ( "$LEG" == "all" && "${PERF:-0}" == "1" ) ]]; then
    echo "== perf gate: scripts/bench_gate.py (quick mode) =="
    python scripts/bench_gate.py
    cp BENCH_hot_path.json "$ARTIFACTS_DIR/BENCH_hot_path.json"
    cp BENCH_incremental.json "$ARTIFACTS_DIR/BENCH_incremental.json"
    cp BENCH_fleet.json "$ARTIFACTS_DIR/BENCH_fleet.json"
    cp BENCH_pmc_store.json "$ARTIFACTS_DIR/BENCH_pmc_store.json"
    cp BENCH_trial_memo.json "$ARTIFACTS_DIR/BENCH_trial_memo.json"
fi

echo "ci: leg '$LEG' green (artifacts in $ARTIFACTS_DIR/)"
