#!/usr/bin/env bash
# Tier-1 verification, twice:
#
#  1. the normal pytest run (full assertion checking), and
#  2. the same suite under `python -O`, which strips every `assert`
#     statement from the *source tree*.  Pass 2 exists to catch code
#     that leans on asserts for control flow or invariant enforcement —
#     e.g. the old `assert task_id == index` in execute_tests_parallel,
#     which under -O silently mis-seeded every task from a pre-seeded
#     queue.  Test-module asserts are also stripped in pass 2 (pytest
#     warns about this), so it only detects crashes/exceptions; pass 1
#     remains the source of truth for behavioural assertions.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: python -m pytest =="
python -m pytest -x -q

echo "== tier-1 under -O (assert-stripped invariant check) =="
python -O -m pytest -x -q

# Opt-in perf gate: PERF=1 scripts/ci.sh also runs the quick-mode
# hot-path benchmark and fails on a >20% throughput regression against
# the baseline recorded in BENCH_hot_path.json.
if [[ "${PERF:-0}" == "1" ]]; then
    echo "== perf gate: scripts/bench_gate.py (quick mode) =="
    python scripts/bench_gate.py
fi

echo "ci: all passes green"
