#!/usr/bin/env python
"""Perf-regression gate over the interpreter hot path, the incremental
campaign engine, the worker fleets and the out-of-core PMC store.

Runs the quick-mode workloads (``benchmarks/bench_hot_path.py``,
``benchmarks/bench_incremental.py``, ``benchmarks/bench_fleet.py``,
``benchmarks/bench_pmc_store.py`` and ``benchmarks/bench_trial_memo.py``
with their small CI configurations),
appends the dated records to the ``BENCH_*.json`` trajectories at the
repo root, and fails when any gated figure drops more than
:data:`TOLERANCE` below the stored quick-mode baseline.

The tolerance is deliberately loose (20%): wall-clock noise on shared CI
machines is real, and the gate exists to catch the "someone put an
allocation back in the per-instruction loop" class of regression — a
2x cliff, not a 2% wobble.  The baseline is only rewritten explicitly
(``--set-baseline``), so a slow creep across many PRs still trips it.

Usage:
    python scripts/bench_gate.py [--label TEXT] [--set-baseline] [--dry-run]

Opt into it from CI with ``PERF=1 scripts/ci.sh``.
"""

from __future__ import annotations

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

import bench_fleet  # noqa: E402  (path setup above)
import bench_hot_path  # noqa: E402
import bench_incremental  # noqa: E402
import bench_pmc_store  # noqa: E402
import bench_trial_memo  # noqa: E402
from bench_hot_path import append_record, load_results  # noqa: E402
from repro.orchestrate.pipeline import Snowboard  # noqa: E402

# A gated metric may fall at most this fraction below the baseline.
TOLERANCE = 0.20
MODE = "quick"

#: The gated benches: (name, trajectory path, gated keys, measure thunk).
BENCHES = (
    (
        "hot_path",
        bench_hot_path.RESULTS_PATH,
        bench_hot_path.THROUGHPUT_KEYS,
        lambda: bench_hot_path.measure_hot_path(
            Snowboard(bench_hot_path.QUICK_CONFIG), **bench_hot_path.QUICK_PARAMS
        ),
    ),
    (
        "incremental",
        bench_incremental.RESULTS_PATH,
        bench_incremental.THROUGHPUT_KEYS,
        lambda: bench_incremental.measure_incremental(
            Snowboard(bench_incremental.QUICK_CONFIG),
            **bench_incremental.QUICK_PARAMS,
        ),
    ),
    (
        "fleet",
        bench_fleet.RESULTS_PATH,
        bench_fleet.THROUGHPUT_KEYS,
        lambda: bench_fleet.measure_fleet(
            Snowboard(bench_fleet.QUICK_CONFIG), **bench_fleet.QUICK_PARAMS
        ),
    ),
    (
        "pmc_store",
        bench_pmc_store.RESULTS_PATH,
        bench_pmc_store.THROUGHPUT_KEYS,
        lambda: bench_pmc_store.measure_pmc_store(
            Snowboard(bench_pmc_store.QUICK_CONFIG),
            **bench_pmc_store.QUICK_PARAMS,
        ),
    ),
    (
        "trial_memo",
        bench_trial_memo.RESULTS_PATH,
        bench_trial_memo.THROUGHPUT_KEYS,
        # Builds its own Snowboard instances: the measurement compares
        # memo-on, memo-off and pruned campaigns over one workload.
        lambda: bench_trial_memo.measure_trial_memo(**bench_trial_memo.QUICK_PARAMS),
    ),
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label", default="bench_gate", help="label stored with the record"
    )
    parser.add_argument(
        "--set-baseline",
        action="store_true",
        help="make this run the new quick-mode baseline",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="measure and compare, but do not write the trajectory file",
    )
    args = parser.parse_args(argv)

    failed = False
    for name, path, keys, measure in BENCHES:
        record = measure()
        baseline = load_results(path).get("baseline", {}).get(MODE)
        if not args.dry_run:
            append_record(
                record,
                mode=MODE,
                label=args.label,
                path=path,
                set_baseline=args.set_baseline,
            )

        if baseline is None or args.set_baseline:
            print(f"bench_gate[{name}]: baseline established at {path}")
            for key in keys:
                print(f"  {key:>25}: {record[key]:>12,.1f}")
            continue

        print(
            f"bench_gate[{name}]: comparing against {MODE} baseline "
            f"({baseline['label']!r})"
        )
        for key in keys:
            now, then = record[key], baseline.get(key)
            if then is None:
                # A key added after the baseline was recorded: nothing to
                # compare yet; the figure enters the gate at the next
                # --set-baseline.
                print(f"  {key:>25}: {now:>12,.1f} (no baseline yet)")
                continue
            ratio = now / then if then else float("inf")
            status = "ok"
            if ratio < 1.0 - TOLERANCE:
                status = "REGRESSION"
                failed = True
            print(
                f"  {key:>25}: {now:>12,.1f} vs {then:>12,.1f}  "
                f"({ratio:5.2f}x) {status}"
            )
    if failed:
        print(
            f"bench_gate: FAILED — a gated figure fell more than "
            f"{TOLERANCE:.0%} below its stored baseline"
        )
        return 1
    print("bench_gate: green")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
