#!/usr/bin/env python
"""Perf-regression gate over the interpreter hot path.

Runs the quick-mode hot-path workload (``benchmarks/bench_hot_path.py``
with the small CI configuration), appends the dated record to the
``BENCH_hot_path.json`` trajectory at the repo root, and fails when any
gated throughput drops more than :data:`TOLERANCE` below the stored
quick-mode baseline.

The tolerance is deliberately loose (20%): wall-clock noise on shared CI
machines is real, and the gate exists to catch the "someone put an
allocation back in the per-instruction loop" class of regression — a
2x cliff, not a 2% wobble.  The baseline is only rewritten explicitly
(``--set-baseline``), so a slow creep across many PRs still trips it.

Usage:
    python scripts/bench_gate.py [--label TEXT] [--set-baseline] [--dry-run]

Opt into it from CI with ``PERF=1 scripts/ci.sh``.
"""

from __future__ import annotations

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

from bench_hot_path import (  # noqa: E402  (path setup above)
    QUICK_CONFIG,
    QUICK_PARAMS,
    RESULTS_PATH,
    THROUGHPUT_KEYS,
    append_record,
    load_results,
    measure_hot_path,
)
from repro.orchestrate.pipeline import Snowboard  # noqa: E402

# A gated metric may fall at most this fraction below the baseline.
TOLERANCE = 0.20
MODE = "quick"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label", default="bench_gate", help="label stored with the record"
    )
    parser.add_argument(
        "--set-baseline",
        action="store_true",
        help="make this run the new quick-mode baseline",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="measure and compare, but do not write the trajectory file",
    )
    args = parser.parse_args(argv)

    record = measure_hot_path(Snowboard(QUICK_CONFIG), **QUICK_PARAMS)
    baseline = load_results().get("baseline", {}).get(MODE)
    if not args.dry_run:
        append_record(
            record,
            mode=MODE,
            label=args.label,
            set_baseline=args.set_baseline,
        )

    if baseline is None or args.set_baseline:
        print(f"bench_gate: baseline established at {RESULTS_PATH}")
        for key in THROUGHPUT_KEYS:
            print(f"  {key:>20}: {record[key]:>12,.1f}")
        return 0

    failed = False
    print(f"bench_gate: comparing against {MODE} baseline ({baseline['label']!r})")
    for key in THROUGHPUT_KEYS:
        now, then = record[key], baseline[key]
        ratio = now / then if then else float("inf")
        status = "ok"
        if ratio < 1.0 - TOLERANCE:
            status = "REGRESSION"
            failed = True
        print(f"  {key:>20}: {now:>12,.1f} vs {then:>12,.1f}  ({ratio:5.2f}x) {status}")
    if failed:
        print(
            f"bench_gate: FAILED — throughput fell more than "
            f"{TOLERANCE:.0%} below the stored baseline"
        )
        return 1
    print("bench_gate: green")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
