#!/usr/bin/env python
"""CI smoke: SIGKILL the campaign service daemon, restart, verify.

Starts ``repro serve`` as a real subprocess, submits two tenants' jobs
over the HTTP API, SIGKILLs the daemon once the rotation is mid-campaign
(some rounds done, none of the jobs finished), restarts it on the same
data directory, and waits for both jobs to complete.  Every final
summary must be bit-identical to the same spec run solo through
``run_rounds`` — the multi-tenant crash-safety contract, end to end
through the daemon, registry journal and per-job checkpoint journals.

Usage:
    python scripts/smoke_service.py [DATA_DIR]
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.orchestrate.pipeline import Snowboard  # noqa: E402
from repro.service import TERMINAL_STATES, JobSpec  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

SPECS = {
    "alice": dict(
        rounds=2, round_budget=5, seed=11, corpus_budget=60, trials=4,
        max_instructions=40_000,
    ),
    "bob": dict(
        rounds=3, round_budget=5, seed=13, corpus_budget=60, trials=4,
        max_instructions=40_000,
    ),
}


def solo_summary(spec_obj: dict) -> dict:
    spec = JobSpec.from_obj(spec_obj)
    result = Snowboard(spec.config()).run_rounds(
        spec.rounds,
        round_budget=spec.round_budget,
        strategy=spec.strategy,
        scheduler_kind=spec.scheduler_kind,
        trials=spec.trials,
        workers=spec.workers,
        corpus_growth=spec.growth(),
        fleet=spec.fleet,
    )
    return result.summary()


def spawn_daemon(data_dir: str) -> subprocess.Popen:
    endpoint = os.path.join(data_dir, "endpoint")
    if os.path.exists(endpoint):  # stale after a SIGKILL
        os.remove(endpoint)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--data", data_dir],
        env=env,
    )
    deadline = time.monotonic() + 30
    while not os.path.exists(endpoint):
        if process.poll() is not None:
            raise AssertionError("smoke_service: daemon died at startup")
        if time.monotonic() > deadline:
            process.kill()
            raise AssertionError("smoke_service: daemon never published endpoint")
        time.sleep(0.05)
    return process


def main() -> int:
    data = sys.argv[1] if len(sys.argv) > 1 else "smoke_service_data"
    if os.path.exists(data):
        shutil.rmtree(data)
    os.makedirs(data)

    expected = {tenant: solo_summary(spec) for tenant, spec in SPECS.items()}

    daemon = spawn_daemon(data)
    client = ServiceClient.connect(data)
    ids = {
        tenant: client.submit(tenant, spec)["job_id"]
        for tenant, spec in SPECS.items()
    }

    # Wait for a mid-campaign window: progress made, nothing finished.
    deadline = time.monotonic() + 120
    while True:
        jobs = {j["job_id"]: j for j in client.jobs()}
        rounds_done = sum(j["rounds_done"] for j in jobs.values())
        terminal = [j for j in jobs.values() if j["state"] in TERMINAL_STATES]
        if rounds_done >= 1 and not terminal:
            break
        if terminal or time.monotonic() > deadline:
            daemon.kill()
            raise AssertionError(
                f"smoke_service: no mid-campaign kill window ({jobs})"
            )
        time.sleep(0.05)
    daemon.send_signal(signal.SIGKILL)
    daemon.wait(timeout=30)
    killed_at = {j["job_id"]: j["rounds_done"] for j in jobs.values()}

    revived = spawn_daemon(data)
    try:
        client = ServiceClient.connect(data)
        deadline = time.monotonic() + 300
        while True:
            jobs = {j["job_id"]: j for j in client.jobs()}
            if all(j["state"] in TERMINAL_STATES for j in jobs.values()):
                break
            if time.monotonic() > deadline:
                raise AssertionError(f"smoke_service: jobs stuck ({jobs})")
            time.sleep(0.2)

        failures = 0
        for tenant, job_id in ids.items():
            state = jobs[job_id]["state"]
            if state != "done":
                print(f"smoke_service: FAILED — {job_id} ended {state}")
                failures += 1
                continue
            summary = client.summary(job_id)
            if summary != expected[tenant]:
                print(
                    f"smoke_service: FAILED — {job_id} summary diverged "
                    f"from solo"
                )
                print(f"  expected: {json.dumps(expected[tenant], sort_keys=True)}")
                print(f"  actual:   {json.dumps(summary, sort_keys=True)}")
                failures += 1
        if failures:
            return 1
        print(
            "smoke_service: green — SIGKILLed the daemon at "
            f"{killed_at}, restarted, and both tenants' summaries are "
            f"bit-identical to solo runs (data: {data})"
        )
        return 0
    finally:
        if revived.poll() is None:
            revived.send_signal(signal.SIGTERM)
            try:
                revived.wait(timeout=30)
            except subprocess.TimeoutExpired:
                revived.kill()


if __name__ == "__main__":
    raise SystemExit(main())
