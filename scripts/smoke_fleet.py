#!/usr/bin/env python
"""CI smoke: the worker fleets under fire.

Three end-to-end fault drills against a serial reference run, exercising
the exact code paths ``campaign --workers N --fleet processes|sockets``
use:

1. **SIGKILLed worker** — a worker process kills itself mid-task
   (``FleetFault.kill_task_id``); the coordinator must reclaim the
   lease, respawn the worker, and finish with a summary bit-identical
   to serial.
2. **SIGKILLed socket worker** — the same drill over the TCP transport:
   the coordinator only learns of the death through the missed-heartbeat
   deadline (a dead socket worker sends no FIN it can rely on), reclaims
   the lease, spawns a fresh worker, and still matches serial.
3. **Killed coordinator** — a checkpointed process-fleet campaign is
   'crashed' after its journal records a few tasks, then resumed by a
   fresh coordinator over a fresh fleet; the resumed summary must be
   bit-identical to the uninterrupted serial run.

Usage:
    python scripts/smoke_fleet.py [CHECKPOINT_PATH]

Environment:
    FLEET_START_METHOD  multiprocessing start method (default: spawn)
"""

from __future__ import annotations

import os
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.orchestrate.fleet import FleetFault  # noqa: E402
from repro.orchestrate.persistence import CheckpointWriter  # noqa: E402
from repro.orchestrate.pipeline import Snowboard, SnowboardConfig  # noqa: E402

CONFIG = SnowboardConfig(
    seed=7,
    corpus_budget=120,
    trials_per_pmc=4,
    fleet_start_method=os.environ.get("FLEET_START_METHOD", "spawn"),
    # Tight liveness knobs so the SIGKILL drills detect the dead worker
    # in seconds, not the production 10 s deadline.  Tuning only: the
    # serial reference ignores them, summaries are unaffected.
    fleet_heartbeat_interval=0.1,
    fleet_heartbeat_timeout=2.0,
    fleet_boot_grace=60.0,
)
BUDGET = 4
WORKERS = 2
STRATEGY = "S-INS-PAIR"


class Killed(BaseException):
    """Stands in for SIGKILL of the coordinator: nothing catches it."""


def drill_sigkilled_worker(expected) -> int:
    """Worker SIGKILLs itself mid-task; campaign must not notice."""
    sb = Snowboard(CONFIG).prepare()
    with tempfile.TemporaryDirectory() as tmp:
        sb.fleet_fault = FleetFault(
            kill_task_id=1, once_marker=os.path.join(tmp, "kill.marker")
        )
        campaign = sb.run_campaign(
            STRATEGY, test_budget=BUDGET, workers=WORKERS, fleet="processes"
        )
    if campaign.summary() != expected.summary():
        print("smoke_fleet: FAILED — post-SIGKILL summary diverged")
        print(f"  expected: {expected.summary()}")
        print(f"  got:      {campaign.summary()}")
        return 1
    if campaign.worker_respawns != 1 or campaign.task_failures != 0:
        print(
            f"smoke_fleet: FAILED — expected 1 respawn/0 failures, got "
            f"{campaign.worker_respawns}/{campaign.task_failures}"
        )
        return 1
    return 0


def drill_sigkilled_socket_worker(expected) -> int:
    """Socket worker SIGKILLs itself; death is seen only via heartbeats."""
    sb = Snowboard(CONFIG).prepare()
    with tempfile.TemporaryDirectory() as tmp:
        sb.fleet_fault = FleetFault(
            kill_task_id=1, once_marker=os.path.join(tmp, "kill.marker")
        )
        campaign = sb.run_campaign(
            STRATEGY, test_budget=BUDGET, workers=WORKERS, fleet="sockets"
        )
    if campaign.summary() != expected.summary():
        print("smoke_fleet: FAILED — post-SIGKILL socket summary diverged")
        print(f"  expected: {expected.summary()}")
        print(f"  got:      {campaign.summary()}")
        return 1
    if campaign.worker_respawns != 1 or campaign.task_failures != 0:
        print(
            f"smoke_fleet: FAILED — expected 1 respawn/0 failures, got "
            f"{campaign.worker_respawns}/{campaign.task_failures}"
        )
        return 1
    missed = sum(s.heartbeats_missed for s in campaign.worker_stats)
    if missed != 1:
        print(
            f"smoke_fleet: FAILED — expected exactly 1 missed-heartbeat "
            f"reclaim, got {missed}"
        )
        return 1
    return 0


def drill_killed_coordinator(expected, path: str) -> int:
    """Coordinator dies mid-journal; a fresh one resumes bit-identically."""
    if os.path.exists(path):
        os.remove(path)
    original = CheckpointWriter.task_done
    calls = {"n": 0}

    def dying(self, *args, **kwargs):
        if calls["n"] >= 2:
            raise Killed()
        calls["n"] += 1
        return original(self, *args, **kwargs)

    CheckpointWriter.task_done = dying
    try:
        sb = Snowboard(CONFIG).prepare()
        try:
            sb.run_campaign(
                STRATEGY,
                test_budget=BUDGET,
                workers=WORKERS,
                fleet="processes",
                checkpoint_path=path,
            )
        except Killed:
            pass
        else:
            print("smoke_fleet: FAILED — campaign finished before the kill")
            return 1
    finally:
        CheckpointWriter.task_done = original

    resumed = Snowboard(CONFIG).prepare().run_campaign(
        STRATEGY,
        test_budget=BUDGET,
        workers=WORKERS,
        fleet="processes",
        checkpoint_path=path,
        resume=True,
    )
    if resumed.summary() != expected.summary():
        print("smoke_fleet: FAILED — resumed summary diverged")
        print(f"  expected: {expected.summary()}")
        print(f"  resumed:  {resumed.summary()}")
        return 1
    return 0


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "smoke_fleet_checkpoint.jsonl"

    reference = Snowboard(CONFIG).prepare()
    expected = reference.run_campaign(STRATEGY, test_budget=BUDGET)

    status = drill_sigkilled_worker(expected)
    if status:
        return status
    status = drill_sigkilled_socket_worker(expected)
    if status:
        return status
    status = drill_killed_coordinator(expected, path)
    if status:
        return status

    print(
        f"smoke_fleet: green — SIGKILLed process worker, SIGKILLed socket "
        f"worker and killed coordinator all recovered to the serial summary "
        f"(start_method={CONFIG.fleet_start_method}, trials={expected.trials}, "
        f"journal={path})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
