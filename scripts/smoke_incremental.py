#!/usr/bin/env python
"""CI smoke: kill-and-resume a round-based campaign.

Runs a 2-round checkpointed campaign, kills the process-equivalent
mid-flight (an exception injected after round 1's last Stage-4 task, so
the journal ends exactly at a round boundary), resumes from the journal
in a fresh Snowboard, and asserts the resumed summary is bit-identical
to an uninterrupted run of the same campaign.  This is the end-to-end
crash-safety contract of ``run_rounds`` — exercised here through the
same code path the CLI's ``campaign --rounds --checkpoint --resume``
uses, cheap enough for every CI run.

Usage:
    python scripts/smoke_incremental.py [CHECKPOINT_PATH]
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.orchestrate.pipeline import Snowboard, SnowboardConfig  # noqa: E402

CONFIG = SnowboardConfig(seed=7, corpus_budget=120, trials_per_pmc=4)
ROUNDS = 2
ROUND_BUDGET = 3


class Killed(BaseException):
    """Stands in for SIGKILL: not an Exception, so nothing catches it."""


def run_until_killed(path: str, kill_after: int) -> None:
    """Start the campaign, 'crash' after ``kill_after`` Stage-4 tasks."""
    sb = Snowboard(CONFIG)
    executed = 0
    real = sb.execute_test

    def dying_execute_test(*args, **kwargs):
        nonlocal executed
        if executed >= kill_after:
            raise Killed()
        executed += 1
        return real(*args, **kwargs)

    sb.execute_test = dying_execute_test
    try:
        sb.run_rounds(ROUNDS, ROUND_BUDGET, checkpoint_path=path)
    except Killed:
        return
    raise AssertionError("campaign finished before the injected kill")


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "smoke_incremental_checkpoint.jsonl"
    if os.path.exists(path):
        os.remove(path)

    # The uninterrupted reference run: no checkpoint, same campaign.
    reference = Snowboard(CONFIG)
    expected = reference.run_rounds(ROUNDS, ROUND_BUDGET)

    # Round 1 executes min(round_budget, exemplars) tests; kill right
    # after its last one so the journal ends at the round boundary.
    round1_tests = reference.state.rounds_log[0].ntests
    run_until_killed(path, kill_after=round1_tests)

    resumed_sb = Snowboard(CONFIG)
    resumed = resumed_sb.run_rounds(
        ROUNDS, ROUND_BUDGET, checkpoint_path=path, resume=True
    )

    if resumed.summary() != expected.summary():
        print("smoke_incremental: FAILED — resumed summary diverged")
        print(f"  expected: {expected.summary()}")
        print(f"  resumed:  {resumed.summary()}")
        return 1
    if resumed_sb.state.rounds_log != reference.state.rounds_log:
        print("smoke_incremental: FAILED — rounds_log diverged after resume")
        return 1

    rounds = [
        (info.round, info.ntests, info.new_pmcs)
        for info in resumed_sb.state.rounds_log
    ]
    print(
        f"smoke_incremental: green — killed after round 1 "
        f"({round1_tests} tests), resumed to an identical summary "
        f"(rounds={rounds}, trials={resumed.trials}, journal={path})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
