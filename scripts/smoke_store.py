#!/usr/bin/env python
"""CI smoke: kill-and-resume a campaign spilled to the tiered PMC store.

Runs a 2-round checkpointed campaign with the access index spilled to
an on-disk store and the hot tier forced to a tenth of the access set
(so eviction and cold probes genuinely happen), kills the
process-equivalent mid-round-2, then resumes from the journal *and* the
store manifest in a fresh Snowboard.  The resumed summary and round log
must be bit-identical to an uninterrupted fully in-memory run of the
same campaign — the end-to-end contract of DESIGN.md §2.14, exercised
through the same code path the CLI's ``campaign --pmc-spill-dir
--pmc-hot-mb --checkpoint --resume`` uses, cheap enough for every CI
run.

Usage:
    python scripts/smoke_store.py [WORK_DIR]
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.orchestrate.pipeline import Snowboard, SnowboardConfig  # noqa: E402
from repro.pmc.store import MANIFEST_NAME  # noqa: E402

CONFIG = SnowboardConfig(seed=7, corpus_budget=120, trials_per_pmc=4)
ROUNDS = 2
ROUND_BUDGET = 3


class Killed(BaseException):
    """Stands in for SIGKILL: not an Exception, so nothing catches it."""


def run_until_killed(config: SnowboardConfig, path: str, kill_after: int) -> None:
    """Start the spilled campaign, 'crash' after ``kill_after`` tasks."""
    sb = Snowboard(config)
    executed = 0
    real = sb.execute_test

    def dying_execute_test(*args, **kwargs):
        nonlocal executed
        if executed >= kill_after:
            raise Killed()
        executed += 1
        return real(*args, **kwargs)

    sb.execute_test = dying_execute_test
    try:
        sb.run_rounds(ROUNDS, ROUND_BUDGET, checkpoint_path=path)
    except Killed:
        return
    raise AssertionError("campaign finished before the injected kill")


def main() -> int:
    work = sys.argv[1] if len(sys.argv) > 1 else "smoke_store_work"
    if os.path.isdir(work):
        shutil.rmtree(work)
    os.makedirs(work)
    journal = os.path.join(work, "journal.jsonl")
    spill_dir = os.path.join(work, "pmcstore")

    # The uninterrupted, fully in-memory reference run.
    reference = Snowboard(CONFIG)
    expected = reference.run_rounds(ROUNDS, ROUND_BUDGET)

    # Force the hot tier to a tenth of the reference access set.
    writes, reads = reference.state.index.counts()
    hot_capacity = max(1, (writes + reads) // 10)
    config = dataclasses.replace(
        CONFIG, pmc_spill_dir=spill_dir, pmc_hot_records=hot_capacity
    )

    # Kill mid-round-2, after the round boundary is journalled.
    kill_after = reference.state.rounds_log[0].ntests + 1
    run_until_killed(config, journal, kill_after=kill_after)
    if not os.path.exists(os.path.join(spill_dir, MANIFEST_NAME)):
        print("smoke_store: FAILED — no store manifest after the kill")
        return 1

    resumed_sb = Snowboard(config)
    resumed = resumed_sb.run_rounds(
        ROUNDS, ROUND_BUDGET, checkpoint_path=journal, resume=True
    )

    if resumed.summary() != expected.summary():
        print("smoke_store: FAILED — resumed spilled summary diverged")
        print(f"  expected: {expected.summary()}")
        print(f"  resumed:  {resumed.summary()}")
        return 1
    stripped = [
        dataclasses.replace(info, store_digest="")
        for info in resumed_sb.state.rounds_log
    ]
    if stripped != reference.state.rounds_log:
        print("smoke_store: FAILED — rounds_log diverged after spilled resume")
        return 1
    if not all(info.store_digest for info in resumed_sb.state.rounds_log):
        print("smoke_store: FAILED — a round record is missing its store digest")
        return 1

    stats = resumed_sb.state.index.store.stats
    if stats["evictions"] == 0:
        print("smoke_store: FAILED — hot tier never evicted (capacity too big?)")
        return 1

    hot, total = resumed_sb.state.index.tier_counts()
    print(
        f"smoke_store: green — killed mid-round-2 (after {kill_after} tests), "
        f"resumed from journal + store manifest to an identical summary "
        f"(hot {hot}/{total} records, evictions={stats['evictions']}, "
        f"cold probes={stats['cold_probes']}, trials={resumed.trials})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
