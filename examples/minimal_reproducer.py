#!/usr/bin/env python3
"""From campaign to minimal reproducer.

The full debugging workflow around a found bug (section 6): run a
campaign, take the reproduction package of a panic, minimise its
recorded schedule with delta debugging, and print the handful of vCPU
switches that constitute the bug's vulnerable window — a diagnosis a
developer can read.

Run:  python examples/minimal_reproducer.py
"""

from repro import Snowboard, SnowboardConfig
from repro.orchestrate.persistence import reproduce
from repro.sched.minimize import minimize_schedule


def main() -> None:
    snowboard = Snowboard(
        SnowboardConfig(seed=7, corpus_budget=200, trials_per_pmc=16)
    ).prepare()
    print("running an S-INS campaign until a panic is packaged...")
    snowboard.run_campaign("S-INS", test_budget=40)

    panics = {
        bug_id: package
        for bug_id, package in snowboard.repro_packages.items()
        if package.expected_panic
    }
    if not panics:
        print("no panic packaged in this budget; raise test_budget")
        return
    bug_id, package = sorted(panics.items())[0]

    print(f"\n== reproduction package for {bug_id} ==")
    print(f"writer: {package.writer}")
    print(f"reader: {package.reader}")
    print(f"recorded switch points: {package.switch_points}")
    print(f"expected: {package.expected_panic}")

    replayed = reproduce(snowboard.executor, package)
    print(f"replay reproduces: panic={replayed.panicked}")

    minimal = minimize_schedule(
        snowboard.executor,
        [package.writer, package.reader],
        package.switch_points,
        oracle=lambda r: r.panic_message == package.expected_panic,
    )
    print(f"\n== minimised schedule ==")
    print(f"{len(package.switch_points)} switch points -> {len(minimal)}: {minimal}")
    print("each remaining switch is essential — together they delimit the")
    print("vulnerable window the PMC hint pointed the scheduler at.")


if __name__ == "__main__":
    main()
