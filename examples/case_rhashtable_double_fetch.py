#!/usr/bin/env python3
"""Figure 4 case study: the rhashtable double-fetch panic (#1).

The bucket-head accessor reads the head *twice* (the GCC
omitted-operand-ternary analogue): once for the NULL check and once for
the value actually used.  ``msgctl(IPC_RMID)`` zeroing the bucket
between the two fetches makes ``msgget()`` dereference NULL — a kernel
panic reachable from any syscall pair that shares an rhashtable.

The example also shows the ``df_leader`` annotation from sequential
profiling — the feature that powers the S-CH-DOUBLE clustering strategy.

Run:  python examples/case_rhashtable_double_fetch.py
"""

from repro import Call, prog
from repro.kernel.kernel import boot_kernel
from repro.pmc.identify import identify_pmcs
from repro.profile.profiler import profile_from_result
from repro.sched.executor import Executor
from repro.sched.snowboard import SnowboardScheduler

WRITER = prog(Call("msgget", (2,)), Call("msgctl", (2, 0)))  # create + RMID
READER = prog(Call("msgget", (2,)))  # lookup walks the bucket


def main() -> None:
    kernel, snapshot = boot_kernel()
    executor = Executor(kernel, snapshot)

    print("== the double fetch in the sequential profile ==")
    double_get = prog(Call("msgget", (2,)), Call("msgget", (2,)))
    profile = profile_from_result(
        0, double_get, executor.run_sequential(double_get)
    )
    for access in profile.accesses:
        if access.df_leader:
            print(f"  df_leader: {access.ins} reads [{access.addr:#x}+{access.size}]")
    print("  (two reads of the bucket head by different instructions, equal"
          " values, no intervening write)")

    print("\n== PMC identification and exploration ==")
    pw = profile_from_result(0, WRITER, executor.run_sequential(WRITER))
    pr = profile_from_result(1, READER, executor.run_sequential(READER))
    pmcset = identify_pmcs([pw, pr])
    pmc = next(
        p
        for p in pmcset
        if (0, 1) in pmcset.pairs(p)
        and "rht_insert" in p.write.ins
        and "rht_ptr" in p.read.ins
    )
    print(f"  scheduling hint: {pmc}")

    scheduler = SnowboardScheduler(pmc, seed=5)
    for trial in range(64):
        scheduler.begin_trial(trial)
        result = executor.run_concurrent([WRITER, READER], scheduler=scheduler)
        if result.panicked:
            print(f"\n  trial {trial}: KERNEL PANIC")
            for line in result.console:
                print(f"    {line}")
            print("  (fetch 1 saw the inserted queue; IPC_RMID zeroed the"
                  " bucket; fetch 2 returned NULL; the walk dereferenced it)")
            return
        scheduler.end_trial(result)
    print("  not exposed in 64 trials (try another seed)")


if __name__ == "__main__":
    main()
