#!/usr/bin/env python3
"""Figure 1 case study: the l2tp order-violation bug (#12).

Two processes connect() to the same L2TP tunnel id.  The first
registers the tunnel — publishing it on the RCU-protected global list
*before* initialising ``tunnel->sock``.  The second retrieves the
freshly published tunnel and its sendmsg() dereferences the NULL socket:
a kernel panic with not a single data race involved (every access is
RCU-published or WRITE_ONCE/READ_ONCE).

The script walks the full Snowboard story: sequential profiling, PMC
identification (the ➊→➋ channel of the figure), and PMC-hinted
interleaving exploration until the panic fires.

Run:  python examples/case_l2tp_order_violation.py
"""

from repro import Call, Res, prog
from repro.detect.datarace import RaceDetector
from repro.kernel.kernel import boot_kernel
from repro.pmc.identify import identify_pmcs
from repro.profile.profiler import profile_from_result
from repro.sched.executor import Executor
from repro.sched.snowboard import SnowboardScheduler

# The two sequential tests of Figure 1.
TEST_1 = prog(Call("socket", (2,)), Call("connect", (Res(0), 1)))
TEST_2 = prog(
    Call("socket", (2,)),
    Call("connect", (Res(0), 1)),
    Call("sendmsg", (Res(0), 5)),
)


def main() -> None:
    kernel, snapshot = boot_kernel()
    executor = Executor(kernel, snapshot)

    print("== sequential runs are clean ==")
    for name, test in (("test 1", TEST_1), ("test 2", TEST_2)):
        result = executor.run_sequential(test)
        print(f"  {name}: returns={result.returns[0]} console={result.console}")

    print("\n== PMC identification ==")
    p1 = profile_from_result(0, TEST_1, executor.run_sequential(TEST_1))
    p2 = profile_from_result(1, TEST_2, executor.run_sequential(TEST_2))
    pmcset = identify_pmcs([p1, p2])
    candidates = [
        pmc
        for pmc in pmcset
        if (0, 1) in pmcset.pairs(pmc) and "l2tp_tunnel_register" in pmc.write.ins
    ]
    print(f"  {len(pmcset)} PMCs between the tests; "
          f"{len(candidates)} involve tunnel registration")
    pmc = candidates[0]
    print(f"  scheduling hint: {pmc}")
    print("  (the write publishes the tunnel list head; the read is test 2's"
          " lookup — the ➊→➋ channel of Figure 1)")

    print("\n== PMC-hinted exploration ==")
    scheduler = SnowboardScheduler(pmc, seed=3)
    for trial in range(64):
        scheduler.begin_trial(trial)
        detector = RaceDetector()
        result = executor.run_concurrent(
            [TEST_1, TEST_2], scheduler=scheduler, race_detector=detector
        )
        if result.panicked:
            print(f"  trial {trial}: KERNEL PANIC")
            for line in result.console:
                print(f"    {line}")
            l2tp_races = [r for r in detector.reports() if r.involves("l2tp")]
            print(f"  l2tp data races reported: {len(l2tp_races)} "
                  f"(an order violation, not a data race)")
            return
        scheduler.end_trial(result)
    print("  not exposed in 64 trials (try another seed)")


if __name__ == "__main__":
    main()
