#!/usr/bin/env python3
"""Quickstart: the whole Snowboard pipeline in one page.

Boots the mini-kernel, fuzzes a sequential-test corpus, profiles it,
identifies PMCs, clusters them with S-INS-PAIR (the paper's best
strategy), and executes the most-uncommon concurrent tests first —
printing every bug the oracles catch along the way.

Run:  python examples/quickstart.py
"""

from repro import Snowboard, SnowboardConfig
from repro.detect.catalog import spec_by_id


def main() -> None:
    config = SnowboardConfig(
        seed=7,
        corpus_budget=200,  # fuzzer candidate executions
        trials_per_pmc=16,  # interleavings explored per concurrent test
    )

    print("== stage 1-2: fuzz, profile, identify PMCs ==")
    snowboard = Snowboard(config).prepare()
    print(f"corpus: {len(snowboard.corpus)} distilled sequential tests")
    print(f"coverage: {len(snowboard.corpus.total_edges)} edges")
    print(f"identified PMCs: {len(snowboard.pmcset)}")

    print("\n== stage 3-4: cluster, prioritise, execute ==")
    campaign = snowboard.run_campaign("S-INS-PAIR", test_budget=50)
    print(f"clusters (exemplar PMCs): {campaign.exemplar_pmcs}")
    print(f"concurrent tests executed: {campaign.tested_pmcs}")
    print(f"interleaving trials: {campaign.trials}")
    print(f"PMC channels actually exercised: {campaign.exercised_pmcs} "
          f"({campaign.accuracy:.0%} accuracy)")

    print("\n== bugs found ==")
    for bug_id, at_test in sorted(campaign.bugs_found().items()):
        spec = spec_by_id(bug_id)
        print(f"  {bug_id} [{spec.bug_type}/{spec.triage.value}] "
              f"@test {at_test}: {spec.summary}")
    if not campaign.bugs_found():
        print("  none in this budget — raise test_budget or trials_per_pmc")


if __name__ == "__main__":
    main()
