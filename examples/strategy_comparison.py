#!/usr/bin/env python3
"""A miniature Table 3: compare concurrent-test generation methods.

Runs each PMC clustering strategy (plus the random/duplicate-pairing
baselines) over the same corpus with the same test budget, and prints
exemplar counts, tested PMCs, and the bugs each method found — the
reproduction of the paper's headline result that uncommon-first
instruction-pair clustering has the highest bug yield per budget.

Run:  python examples/strategy_comparison.py [test_budget]
"""

import sys

from repro import Snowboard, SnowboardConfig
from repro.orchestrate.pipeline import (
    DUPLICATE_PAIRING,
    RANDOM_PAIRING,
    RANDOM_S_INS_PAIR,
)
from repro.orchestrate.results import TABLE3_HEADER

METHODS = (
    "S-FULL",
    "S-CH",
    "S-CH-NULL",
    "S-CH-UNALIGNED",
    "S-CH-DOUBLE",
    "S-INS",
    "S-INS-PAIR",
    "S-MEM",
    RANDOM_S_INS_PAIR,
    RANDOM_PAIRING,
    DUPLICATE_PAIRING,
)


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    snowboard = Snowboard(
        SnowboardConfig(seed=7, corpus_budget=260, trials_per_pmc=16)
    ).prepare()
    print(
        f"corpus={len(snowboard.corpus)} tests, "
        f"PMCs={len(snowboard.pmcset)}, budget={budget} tests/method\n"
    )
    print(TABLE3_HEADER)
    for method in METHODS:
        campaign = snowboard.run_campaign(method, test_budget=budget)
        print(campaign.table_row())


if __name__ == "__main__":
    main()
