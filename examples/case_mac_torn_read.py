#!/usr/bin/env python3
"""Figure 3 case study: the torn MAC-address read (#9).

``eth_commit_mac_addr_change()`` copies the 6-byte MAC under the RTNL
lock; ``dev_ifsioc()`` copies it out under ``rcu_read_lock`` only.
Different locks → no mutual exclusion → the reader can return a MAC
that is half old, half new, straight to user space.

Run:  python examples/case_mac_torn_read.py
"""

from repro import Call, Res, prog
from repro.detect.datarace import RaceDetector
from repro.kernel.kernel import boot_kernel
from repro.pmc.identify import identify_pmcs
from repro.profile.profiler import profile_from_result
from repro.sched.executor import Executor
from repro.sched.snowboard import SnowboardScheduler

OLD_MAC = 0x0250_5600_0000  # boot-time MAC of eth0
NEW_MAC = 0xFFEE_DDCC_BBAA

WRITER = prog(Call("socket", (0,)), Call("ioctl", (Res(0), 4, NEW_MAC)))
READER = prog(Call("socket", (0,)), Call("ioctl", (Res(0), 5, 0)))


def fmt_mac(value: int) -> str:
    return ":".join(f"{(value >> (8 * i)) & 0xFF:02x}" for i in range(6))


def main() -> None:
    kernel, snapshot = boot_kernel()
    executor = Executor(kernel, snapshot)

    print(f"old MAC: {fmt_mac(OLD_MAC)}   new MAC: {fmt_mac(NEW_MAC)}")

    pw = profile_from_result(0, WRITER, executor.run_sequential(WRITER))
    pr = profile_from_result(1, READER, executor.run_sequential(READER))
    pmcset = identify_pmcs([pw, pr])
    pmc = next(
        p
        for p in pmcset
        if (0, 1) in pmcset.pairs(p)
        and "ioctl_set_mac" in p.write.ins
        and "ioctl_get_mac" in p.read.ins
    )
    print(f"scheduling hint: {pmc}")
    print("(the writer's memcpy is two store instructions — 4 + 2 bytes — "
          "and the hint points the scheduler right between them)")

    scheduler = SnowboardScheduler(pmc, seed=11)
    for trial in range(64):
        scheduler.begin_trial(trial)
        detector = RaceDetector()
        result = executor.run_concurrent(
            [WRITER, READER], scheduler=scheduler, race_detector=detector
        )
        got = result.returns[1][1] if len(result.returns[1]) > 1 else None
        if got is not None and got not in (OLD_MAC, NEW_MAC):
            print(f"\ntrial {trial}: user space received a TORN MAC: {fmt_mac(got)}")
            print(f"  low 4 bytes come from the new MAC:  {fmt_mac(got & 0xFFFFFFFF)}")
            print(f"  high 2 bytes are still the old MAC")
            races = [r for r in detector.reports() if r.involves("ioctl_get_mac")]
            print(f"  data race reported: {races[0] if races else 'none'}")
            return
        scheduler.end_trial(result)
    print("no torn read in 64 trials (try another seed)")


if __name__ == "__main__":
    main()
