#!/usr/bin/env python3
"""Distributed concurrent-test execution over the multi-process fleet.

The paper integrates its execution platform "with a lightweight
distributed queue so that concurrent tests can be distributed in a cloud
platform" (section 4.4.1).  This example reproduces that topology with
real process isolation: one analysis instance (the coordinator)
generates prioritised concurrent tests and serialises them into
versioned, fully picklable ``TaskEnvelope``s; N worker *processes* —
each booting a private kernel, like one cloud VM each — execute them and
stream back ``ResultEnvelope``s.  Everything crossing the boundary is
plain picklable data, the same shape a real network transport (Redis,
gRPC) would carry.

The coordinator owns the fault model too: if a worker process dies
mid-task its lease is reclaimed and re-dispatched, and the worker is
respawned with a fresh kernel — run the drills in ``tests/test_fleet.py``
and ``scripts/smoke_fleet.py`` to see that under fire.

Run:  python examples/distributed_campaign.py [workers]
"""

import pickle
import sys

from repro import Snowboard, SnowboardConfig
from repro.detect.catalog import match_observations
from repro.orchestrate.fleet import ProcessFleet, TaskEnvelope, WorkerSpec
from repro.orchestrate.pipeline import Stage4Task
from repro.orchestrate.queue import TaskFailure

TRIALS = 12
BUDGET = 12


def main() -> None:
    nworkers = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    config = SnowboardConfig(seed=7, corpus_budget=200, trials_per_pmc=TRIALS)

    print("== coordinator: generate prioritised tests ==")
    snowboard = Snowboard(config).prepare()
    tests, nclusters = snowboard.generate_tests("S-INS-PAIR", limit=BUDGET)
    print(f"{len(tests)} concurrent tests from {nclusters} clusters")

    print("\n== serialise onto the wire ==")
    envelopes = [
        TaskEnvelope.from_task(
            Stage4Task(task_id=i, test=test, trials=TRIALS)
        )
        for i, test in enumerate(tests)
    ]
    wire_bytes = sum(len(pickle.dumps(e)) for e in envelopes)
    print(
        f"{len(envelopes)} task envelopes, {wire_bytes:,} bytes pickled "
        f"(version {envelopes[0].version})"
    )

    print(f"\n== dispatch to {nworkers} worker processes ==")
    fleet = ProcessFleet(WorkerSpec(config=config), nworkers=nworkers)
    results = fleet.run(envelopes)
    for stats in fleet.worker_stats:
        print(
            f"  worker {stats.worker_id}: {stats.tasks_done} tasks, "
            f"{stats.retries} retries, {stats.respawns} respawns"
        )

    print("\n== collected observations ==")
    all_obs = []
    for task_id in sorted(results):
        result = results[task_id]
        if isinstance(result, TaskFailure):
            print(f"  task {task_id}: FAILED ({result.message})")
            continue
        outcomes, _ = result.decode()
        for outcome in outcomes:
            all_obs.extend(outcome.observations)
    grouped = match_observations(all_obs)
    for bug_id, observations in sorted(grouped.items()):
        print(f"  {bug_id}: {len(observations)} observation(s)")
        for obs in observations[:2]:
            print(f"    {obs}")
    if not all_obs:
        print("  (no observations in this slice; the campaign runner applies"
              " race detection and dedup — see quickstart.py)")


if __name__ == "__main__":
    main()
