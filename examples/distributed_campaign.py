#!/usr/bin/env python3
"""Distributed concurrent-test execution through the work queue.

The paper integrates its execution platform "with a lightweight
distributed queue so that concurrent tests can be distributed in a cloud
platform" (section 4.4.1).  This example reproduces the topology in
process: one analysis instance generates prioritised concurrent tests,
pushes them onto the queue, and N workers — each owning a *private*
booted kernel, like one cloud VM each — pull and execute them, reporting
observations back.

Run:  python examples/distributed_campaign.py [workers]
"""

import sys

from repro import Snowboard, SnowboardConfig
from repro.detect.catalog import match_observations
from repro.detect.datarace import RaceDetector
from repro.detect.report import observe
from repro.kernel.kernel import boot_kernel
from repro.orchestrate.queue import WorkQueue, run_workers
from repro.sched.executor import Executor
from repro.sched.snowboard import SnowboardScheduler

TRIALS = 12


def make_worker():
    """Build one worker: a private kernel + executor (one 'cloud VM')."""
    kernel, snapshot = boot_kernel()
    executor = Executor(kernel, snapshot)

    def execute(payload):
        test_index, writer, reader, pmc = payload
        scheduler = (
            SnowboardScheduler(pmc, seed=test_index) if pmc is not None else None
        )
        found = {}
        for trial in range(TRIALS):
            if scheduler is not None:
                scheduler.begin_trial(trial)
            detector = RaceDetector()
            result = executor.run_concurrent(
                [writer, reader], scheduler=scheduler, race_detector=detector
            )
            for obs in observe(result):
                found.setdefault(obs.key, obs)
            if result.panicked:
                break  # the trial killed the kernel; test done
            if scheduler is not None:
                scheduler.end_trial(result)
        return test_index, list(found.values())

    return execute


def main() -> None:
    nworkers = int(sys.argv[1]) if len(sys.argv) > 1 else 4

    print("== analysis instance: generate prioritised tests ==")
    snowboard = Snowboard(
        SnowboardConfig(seed=7, corpus_budget=200)
    ).prepare()
    tests, nclusters = snowboard.generate_tests("S-INS-PAIR", limit=24)
    print(f"{len(tests)} concurrent tests from {nclusters} clusters")

    print(f"\n== dispatch to {nworkers} workers ==")
    work = WorkQueue()
    for i, test in enumerate(tests):
        work.put((i, test.writer, test.reader, test.pmc))
    results = run_workers(work, make_worker, nworkers=nworkers)

    print("\n== collected observations ==")
    all_obs = [obs for _, obs_list in results.values() for obs in obs_list]
    grouped = match_observations(all_obs)
    for bug_id, observations in sorted(grouped.items()):
        print(f"  {bug_id}: {len(observations)} observation(s)")
        for obs in observations[:2]:
            print(f"    {obs}")
    if not all_obs:
        print("  (no console-visible bugs in this slice; races are collected"
              " by the in-process campaign runner — see quickstart.py)")


if __name__ == "__main__":
    main()
