#!/usr/bin/env python3
"""Inspect the inter-thread communication structure of a corpus.

Before running a campaign it is worth seeing *where* tests can
communicate: which subsystems share memory, which addresses are hot, and
what the PMC population looks like per clustering strategy.  This is the
developer-facing view of the data Snowboard's selection stage consumes.

Run:  python examples/inspect_communication.py
"""

from repro import Snowboard, SnowboardConfig
from repro.pmc.clustering import ALL_STRATEGIES
from repro.pmc.selection import cluster_stats
from repro.profile.trace import (
    access_breakdown,
    communication_matrix,
    hot_addresses,
    shared_objects,
)


def main() -> None:
    snowboard = Snowboard(SnowboardConfig(seed=7, corpus_budget=200)).prepare()
    profiles = snowboard.profiles

    print("== per-subsystem shared accesses (reads, writes) ==")
    all_accesses = [
        a for entry in snowboard.corpus for a in entry.result.shared_accesses()
    ]
    for subsystem, (reads, writes) in access_breakdown(all_accesses).items():
        print(f"  {subsystem:<12} R={reads:<6} W={writes}")

    print("\n== hottest shared addresses ==")
    named = {addr: name for name, addr in snowboard.kernel.globals.items()}
    heap_base = snowboard.kernel.machine.regions.heap_base
    for addr, count in hot_addresses(all_accesses, top=8):
        if addr >= heap_base:
            label = "heap object"
        else:
            base = max((a for a in named if a <= addr), default=None)
            label = named.get(base, "?") if base is not None else "?"
        print(f"  {addr:#10x}  {count:>6} accesses  ({label})")

    print("\n== shared kernel objects (coalesced access ranges) ==")
    objects = shared_objects(profiles)
    print(f"  {len(objects)} objects; largest:")
    for obj in sorted(objects, key=lambda o: -o.size)[:5]:
        print(
            f"  [{obj.start:#x}, {obj.end:#x}) {obj.size:>5} bytes  "
            f"readers={obj.readers} writers={obj.writers}"
        )

    print("\n== inter-subsystem communication channels (write -> read) ==")
    matrix = communication_matrix(profiles)
    for (writer, reader), count in sorted(matrix.items(), key=lambda kv: -kv[1])[:10]:
        print(f"  {writer:>10} -> {reader:<10} {count:>7} overlaps")

    print("\n== PMC population per clustering strategy ==")
    pmcs = snowboard.pmcset.all_pmcs()
    print(f"  identified PMCs: {len(pmcs)}")
    for strategy in ALL_STRATEGIES:
        nclusters, members = cluster_stats(pmcs, strategy)
        print(f"  {strategy.name:<16} {nclusters:>6} clusters over {members:>6} PMCs")


if __name__ == "__main__":
    main()
