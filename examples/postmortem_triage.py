#!/usr/bin/env python3
"""Post-mortem triage of detected data races (section 4.4.1).

After a campaign, each race report is matched back to the identified
PMC set ("verify that a data race is caused by an identified PMC") and
enriched with kernel source locations and code snippets — the material
one needs to write a bug report like the ones the paper filed upstream.

Run:  python examples/postmortem_triage.py
"""

from repro import Snowboard, SnowboardConfig
from repro.detect.datarace import RaceDetector
from repro.detect.postmortem import analyze_all
from repro.sched.snowboard import SnowboardScheduler


def main() -> None:
    snowboard = Snowboard(SnowboardConfig(seed=7, corpus_budget=200)).prepare()
    tests, _ = snowboard.generate_tests("S-INS-PAIR", limit=25)

    races = {}
    for index, test in enumerate(tests):
        scheduler = SnowboardScheduler(test.pmc, seed=index)
        for trial in range(10):
            scheduler.begin_trial(trial)
            detector = RaceDetector()
            result = snowboard.executor.run_concurrent(
                [test.writer, test.reader],
                scheduler=scheduler,
                race_detector=detector,
            )
            for race in detector.reports():
                races.setdefault(race.key, race)
            scheduler.end_trial(result)

    print(f"collected {len(races)} distinct data races; post-mortem:\n")
    reports = analyze_all(list(races.values()), snowboard.pmcset)
    for report in reports[:6]:
        print(report.render())
        print()

    confirmed = sum(1 for r in reports if r.pmc_confirmed)
    print(
        f"{confirmed}/{len(reports)} races were predicted by an identified "
        f"PMC; the rest surfaced incidentally during exploration."
    )


if __name__ == "__main__":
    main()
