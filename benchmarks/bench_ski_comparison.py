"""Experiments E3/E4 — section 5.4: Snowboard vs SKI.

E3 — execution throughput: the paper measured 193.8 vs 170.3
executions/minute (Snowboard slightly faster, because SKI performs more
vCPU switches: it yields at PMC *instructions* regardless of the memory
target, Snowboard only at the precise PMC accesses).

E4 — interleavings to expose: over the bug-triggering concurrent tests,
SKI needed 84× more interleavings on average (826.29 vs 9.76 per test).
We run the same comparison over the case-study bug suite and check the
direction: Snowboard exposes bugs in no more trials than SKI on average,
and switches fewer times per execution.
"""

from __future__ import annotations

import statistics

import pytest

from repro.fuzz.prog import Call, Res, prog
from repro.kernel.kernel import boot_kernel
from repro.pmc.identify import identify_pmcs
from repro.profile.profiler import profile_from_result
from repro.sched.executor import Executor
from repro.sched.ski import PctScheduler, SkiScheduler
from repro.sched.snowboard import SnowboardScheduler

# At most 64 trials per PMC, as in the paper's setup (section 5.1); a
# bug's concurrent test may carry several candidate PMCs, explored in
# identification order, and we count cumulative trials until exposure.
TRIALS_PER_PMC = 64
MAX_TRIALS = 64

# The bug-triggering concurrent tests (writer, reader, PMC predicate,
# oracle) used for the interleavings-to-expose comparison.
BUG_SUITE = (
    (
        "l2tp-ov",
        prog(Call("socket", (2,)), Call("connect", (Res(0), 1))),
        prog(Call("socket", (2,)), Call("connect", (Res(0), 1)), Call("sendmsg", (Res(0), 5))),
        lambda p: "l2tp_tunnel_register" in p.write.ins,
        lambda r: r.panicked,
    ),
    (
        "rht-double-fetch",
        prog(Call("msgget", (2,)), Call("msgctl", (2, 0))),
        prog(Call("msgget", (2,))),
        lambda p: "rht_insert" in p.write.ins and "rht_ptr" in p.read.ins,
        lambda r: r.panicked,
    ),
    (
        "configfs-null",
        prog(Call("mkdir", (2,))),
        prog(Call("lookup", (2,))),
        lambda p: "sys_mkdir" in p.write.ins and "sys_lookup" in p.read.ins,
        lambda r: r.panicked,
    ),
    (
        "swap-boot-av",
        prog(Call("open", (1,)), Call("ioctl", (Res(0), 1, 0))),
        prog(Call("open", (1,)), Call("ioctl", (Res(0), 1, 0))),
        lambda p: "swap_boot" in p.write.ins,
        lambda r: any("checksum invalid" in line for line in r.console),
    ),
    (
        "blocksize-io-error",
        prog(Call("open", (1,)), Call("ioctl", (Res(0), 2, 1))),
        prog(Call("open", (2,)), Call("read", (Res(0), 2))),
        lambda p: "set_blocksize" in p.write.ins,
        lambda r: any("I/O error" in line for line in r.console),
    ),
)


@pytest.fixture(scope="module")
def ex():
    kernel, snapshot = boot_kernel()
    return Executor(kernel, snapshot)


def _candidate_pmcs(ex, writer, reader, predicate):
    pw = profile_from_result(0, writer, ex.run_sequential(writer))
    pr = profile_from_result(1, reader, ex.run_sequential(reader))
    pmcset = identify_pmcs([pw, pr])
    candidates = [p for p in pmcset if (0, 1) in pmcset.pairs(p) and predicate(p)]
    assert candidates
    return candidates


def _pick_pmc(ex, writer, reader, predicate):
    return _candidate_pmcs(ex, writer, reader, predicate)[0]


def _trials_to_expose(ex, writer, reader, candidates, make_scheduler, oracle):
    """Cumulative trials across candidate PMCs until the bug fires."""
    total_trials = 0
    total_switches = 0
    for pmc in candidates:
        scheduler = make_scheduler(pmc)
        for trial in range(TRIALS_PER_PMC):
            scheduler.begin_trial(trial)
            result = ex.run_concurrent([writer, reader], scheduler=scheduler)
            total_trials += 1
            total_switches += result.switches
            if oracle(result):
                return total_trials, total_switches, True
            scheduler.end_trial(result)
    return total_trials, total_switches, False


def run_comparison(ex):
    rows = []
    for name, writer, reader, predicate, oracle in BUG_SUITE:
        candidates = _candidate_pmcs(ex, writer, reader, predicate)
        sb_trials, sb_switches, sb_ok = _trials_to_expose(
            ex, writer, reader, candidates,
            lambda pmc: SnowboardScheduler(pmc, seed=3), oracle,
        )
        ski_trials, ski_switches, ski_ok = _trials_to_expose(
            ex, writer, reader, candidates,
            lambda pmc: SkiScheduler(pmc, seed=3), oracle,
        )
        # PCT ignores the PMC hint entirely (pure schedule exploration):
        # one scheduler instance, the same total trial budget.
        pct_trials, pct_switches, pct_ok = _trials_to_expose(
            ex, writer, reader, candidates,
            lambda pmc: PctScheduler(seed=3, depth=3), oracle,
        )
        rows.append(
            (name, sb_trials, ski_trials, pct_trials, sb_switches, ski_switches, sb_ok)
        )
    return rows


def test_interleavings_to_expose(ex, benchmark):
    rows = benchmark.pedantic(run_comparison, args=(ex,), rounds=1, iterations=1)

    print("\n== Interleavings to expose (section 5.4) ==")
    print(f"{'bug':<22} {'Snowboard':>10} {'SKI':>8} {'PCT':>8}")
    for name, sb, ski, pct, _, _, _ in rows:
        print(f"{name:<22} {sb:>10} {ski:>8} {pct:>8}")
    sb_mean = statistics.mean(r[1] for r in rows)
    ski_mean = statistics.mean(r[2] for r in rows)
    pct_mean = statistics.mean(r[3] for r in rows)
    print(
        f"mean: Snowboard {sb_mean:.2f} vs SKI {ski_mean:.2f} vs PCT "
        f"{pct_mean:.2f} (paper: 9.76 vs 826.29 on real kernels)"
    )
    benchmark.extra_info["snowboard_mean_trials"] = round(sb_mean, 2)
    benchmark.extra_info["ski_mean_trials"] = round(ski_mean, 2)
    benchmark.extra_info["pct_mean_trials"] = round(pct_mean, 2)

    # Direction check: PMC-precise scheduling needs no more interleavings
    # than instruction-only scheduling on average.  (The 84x of the paper
    # comes from kernel-scale instruction reuse; a mini-kernel shrinks the
    # gap but must not invert it.)
    assert sb_mean <= ski_mean * 1.5
    # Hint-free PCT should not beat hinted exploration on average either.
    assert sb_mean <= pct_mean * 1.5
    # Every bug is exposed by Snowboard within the trial budget.
    assert all(r[6] for r in rows)


def test_execution_throughput_vs_ski(ex, benchmark):
    """E3: executions/minute under both schedulers on one concurrent test."""
    import time

    writer = prog(Call("socket", (2,)), Call("connect", (Res(0), 1)))
    reader = prog(Call("socket", (2,)), Call("connect", (Res(0), 1)), Call("sendmsg", (Res(0), 5)))
    pmc = _pick_pmc(ex, writer, reader, lambda p: "l2tp" in p.write.ins)
    n = 60

    def run_snowboard():
        scheduler = SnowboardScheduler(pmc, seed=1)
        for trial in range(n):
            scheduler.begin_trial(trial)
            ex.run_concurrent([writer, reader], scheduler=scheduler)

    start = time.perf_counter()
    run_snowboard()
    sb_rate = n / (time.perf_counter() - start) * 60

    def run_ski():
        scheduler = SkiScheduler(pmc, seed=1)
        for trial in range(n):
            scheduler.begin_trial(trial)
            ex.run_concurrent([writer, reader], scheduler=scheduler)

    start = time.perf_counter()
    benchmark.pedantic(run_ski, rounds=1, iterations=1)
    ski_rate = n / benchmark.stats["mean"] * 60

    print(
        f"\nexecutions/minute: Snowboard {sb_rate:.0f} vs SKI {ski_rate:.0f} "
        f"(paper: 193.8 vs 170.3)"
    )
    benchmark.extra_info["snowboard_per_minute"] = round(sb_rate)
    benchmark.extra_info["ski_per_minute"] = round(ski_rate)
    # Same order of magnitude; Snowboard must not be drastically slower.
    assert sb_rate > ski_rate * 0.5


def test_execution_throughput_restore_modes(ex, benchmark):
    """Executions/minute before vs after dirty-page snapshot restore.

    The per-trial reset used to rebuild every mapped page; with dirty-page
    tracking it copies back only the pages the previous trial touched.
    Same trials, same results — just a cheaper reset, visible directly in
    executions/minute.
    """
    import time

    writer = prog(Call("socket", (2,)), Call("connect", (Res(0), 1)))
    reader = prog(Call("socket", (2,)), Call("connect", (Res(0), 1)), Call("sendmsg", (Res(0), 5)))
    pmc = _pick_pmc(ex, writer, reader, lambda p: "l2tp" in p.write.ins)
    n = 60

    def run_trials(full_restore):
        ex.full_restore = full_restore
        try:
            scheduler = SnowboardScheduler(pmc, seed=1)
            restore_seconds = 0.0
            pages = 0
            start = time.perf_counter()
            for trial in range(n):
                scheduler.begin_trial(trial)
                result = ex.run_concurrent([writer, reader], scheduler=scheduler)
                restore_seconds += result.restore_seconds
                pages += result.pages_restored
            wall = time.perf_counter() - start
            return wall, restore_seconds, pages
        finally:
            ex.full_restore = False

    full_wall, full_restore_s, full_pages = run_trials(full_restore=True)
    (inc_wall, inc_restore_s, inc_pages) = benchmark.pedantic(
        run_trials, args=(False,), rounds=1, iterations=1
    )

    before_rate = n / full_wall * 60
    after_rate = n / inc_wall * 60
    reset_speedup = (full_restore_s / n) / (inc_restore_s / n)
    print(
        f"\nexecutions/minute: {before_rate:.0f} (full-copy restore, "
        f"{full_pages / n:.0f} pages/trial) -> {after_rate:.0f} (dirty-page, "
        f"{inc_pages / n:.1f} pages/trial); per-trial reset {reset_speedup:.1f}x faster"
    )
    benchmark.extra_info["per_minute_full_restore"] = round(before_rate)
    benchmark.extra_info["per_minute_dirty_pages"] = round(after_rate)
    benchmark.extra_info["reset_speedup"] = round(reset_speedup, 1)
    assert inc_pages < full_pages / 10
    assert reset_speedup >= 3.0
