"""Experiment — process fleet vs thread fleet vs socket fleet throughput.

CPython threads serialize the interpreter hot path behind the GIL, so
the PR-2 thread fleet buys fault isolation but no parallel speedup.  The
process fleet's claim is that spreading private-kernel workers over real
processes buys genuine parallelism — on a 4-core runner, process workers
should clear >= 1.5x the thread-fleet executions/minute.  On a 1-core
container the speedup inverts (spawn + pickle overhead, no second core),
so the figure asserted here is *equality of results* and the throughput
numbers are recorded for the gate to compare against their own baseline
on the same machine class.

The socket fleet runs the same worker bodies over localhost TCP
(length-prefixed JSON frames instead of pickled queue messages); its leg
quantifies what the network transport costs relative to the
multiprocessing queues on the same machine.

Results are appended to ``BENCH_fleet.json`` at the repo root in the
same trajectory shape as ``BENCH_hot_path.json``; ``scripts/bench_gate.py``
gates the figures.
"""

from __future__ import annotations

import os
import time
from typing import Dict

from bench_hot_path import append_record, load_results  # noqa: F401  (re-export)

from repro.orchestrate.pipeline import Snowboard, SnowboardConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_PATH = os.path.join(REPO_ROOT, "BENCH_fleet.json")

STRATEGY = "S-INS-PAIR"

# Quick mode: seconds, for the CI gate.
QUICK_CONFIG = SnowboardConfig(seed=7, corpus_budget=120, trials_per_pmc=8)
QUICK_PARAMS = dict(budget=6, workers=2)

# Full mode: the shared bench-session configuration (conftest.py).
FULL_PARAMS = dict(budget=12, workers=4)


def measure_fleet(snowboard: Snowboard, budget: int, workers: int) -> Dict[str, object]:
    """Run the same campaign over thread and process fleets; compare.

    Both runs are fully deterministic (fixed seed); summary equality is
    asserted — a bench that changed campaign results would be measuring
    the wrong thing.
    """
    config = snowboard.config

    thread_sb = Snowboard(config).prepare()
    start = time.perf_counter()
    thread_campaign = thread_sb.run_campaign(
        STRATEGY, test_budget=budget, workers=workers, fleet="threads"
    )
    thread_wall = time.perf_counter() - start

    process_sb = Snowboard(config).prepare()
    start = time.perf_counter()
    process_campaign = process_sb.run_campaign(
        STRATEGY, test_budget=budget, workers=workers, fleet="processes"
    )
    process_wall = time.perf_counter() - start

    socket_sb = Snowboard(config).prepare()
    start = time.perf_counter()
    socket_campaign = socket_sb.run_campaign(
        STRATEGY, test_budget=budget, workers=workers, fleet="sockets"
    )
    socket_wall = time.perf_counter() - start

    assert process_campaign.summary() == thread_campaign.summary()
    assert socket_campaign.summary() == thread_campaign.summary()

    thread_epm = thread_campaign.executions_per_minute
    process_epm = process_campaign.executions_per_minute
    socket_epm = socket_campaign.executions_per_minute
    return {
        "budget": budget,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "trials": thread_campaign.trials,
        "thread_wall_seconds": round(thread_wall, 3),
        "process_wall_seconds": round(process_wall, 3),
        "socket_wall_seconds": round(socket_wall, 3),
        "thread_executions_per_min": round(thread_epm, 1),
        "process_executions_per_min": round(process_epm, 1),
        "socket_executions_per_min": round(socket_epm, 1),
        "process_speedup": round(process_epm / thread_epm, 2) if thread_epm else 0.0,
        "socket_overhead": (
            round(process_epm / socket_epm, 2) if socket_epm else 0.0
        ),
        "campaign_summary": thread_campaign.summary(),
    }


#: The figures the regression gate compares (higher is better).
THROUGHPUT_KEYS = (
    "thread_executions_per_min",
    "process_executions_per_min",
    "socket_executions_per_min",
)


def test_fleet_throughput(snowboard):
    """Measure and record the full-mode fleet throughput figures."""
    record = measure_fleet(snowboard, **FULL_PARAMS)
    append_record(record, mode="full", label="bench_fleet", path=RESULTS_PATH)
    print(
        f"\nfleet ({record['workers']} workers, {record['cpu_count']} cores): "
        f"threads {record['thread_executions_per_min']:,.0f} exec/min, "
        f"processes {record['process_executions_per_min']:,.0f} exec/min "
        f"({record['process_speedup']:.2f}x), "
        f"sockets {record['socket_executions_per_min']:,.0f} exec/min"
    )
    assert record["trials"] > 0
    # The >= 1.5x claim needs real cores; on small containers the spawn
    # and pickle overhead dominates and only the trajectory is recorded.
    if (record["cpu_count"] or 1) >= 4:
        assert record["process_speedup"] >= 1.5
