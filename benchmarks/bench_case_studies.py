"""Experiments F1/F3/F4 — the paper's three case-study figures.

Each case study pairs the exact sequential tests from the figure,
identifies the enabling PMC, and explores with the Snowboard scheduler
until the bug manifests, reporting trials-to-expose:

* Figure 1 (#12): l2tp tunnel registration order violation → NULL-deref
  kernel panic in the transmit path.
* Figure 3 (#9): torn MAC-address read returned to user space.
* Figure 4 (#1): rhashtable double fetch → NULL-deref panic under
  msgget ‖ msgctl(IPC_RMID).
"""

from __future__ import annotations

import pytest

from repro.detect.datarace import RaceDetector
from repro.fuzz.prog import Call, Res, prog
from repro.kernel.kernel import boot_kernel
from repro.pmc.identify import identify_pmcs
from repro.profile.profiler import profile_from_result
from repro.sched.executor import Executor
from repro.sched.snowboard import SnowboardScheduler

MAX_TRIALS = 128


def pick_pmc(executor, writer, reader, predicate):
    """Profile the pair, identify PMCs, select the enabling channel."""
    pw = profile_from_result(0, writer, executor.run_sequential(writer))
    pr = profile_from_result(1, reader, executor.run_sequential(reader))
    pmcset = identify_pmcs([pw, pr])
    candidates = [
        pmc for pmc in pmcset if (0, 1) in pmcset.pairs(pmc) and predicate(pmc)
    ]
    assert candidates, "the enabling PMC must be identified"
    return candidates[0]


def explore_until(executor, writer, reader, pmc, stop, seed=3):
    """Snowboard exploration; returns trials executed until ``stop`` hits."""
    scheduler = SnowboardScheduler(pmc, seed=seed)
    for trial in range(MAX_TRIALS):
        scheduler.begin_trial(trial)
        detector = RaceDetector()
        result = executor.run_concurrent(
            [writer, reader], scheduler=scheduler, race_detector=detector
        )
        if stop(result, detector):
            return trial + 1
        scheduler.end_trial(result)
    return None


@pytest.fixture(scope="module")
def ex():
    kernel, snapshot = boot_kernel()
    return Executor(kernel, snapshot)


def test_figure1_l2tp_order_violation(ex, benchmark):
    writer = prog(Call("socket", (2,)), Call("connect", (Res(0), 1)))
    reader = prog(
        Call("socket", (2,)), Call("connect", (Res(0), 1)), Call("sendmsg", (Res(0), 5))
    )
    pmc = pick_pmc(ex, writer, reader, lambda p: "l2tp_tunnel_register" in p.write.ins)

    def run():
        return explore_until(
            ex,
            writer,
            reader,
            pmc,
            stop=lambda result, _: result.panicked
            and "pppol2tp_sendmsg" in result.panic_message,
        )

    trials = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nFigure 1 (l2tp #12): exposed after {trials} PMC-guided trials")
    benchmark.extra_info["trials_to_expose"] = trials
    assert trials is not None
    assert trials <= 32  # focused exploration, not luck


def test_figure3_mac_torn_read(ex, benchmark):
    old_mac, new_mac = 0x0250_5600_0000, 0xFFEE_DDCC_BBAA
    writer = prog(Call("socket", (0,)), Call("ioctl", (Res(0), 4, new_mac)))
    reader = prog(Call("socket", (0,)), Call("ioctl", (Res(0), 5, 0)))
    pmc = pick_pmc(
        ex,
        writer,
        reader,
        lambda p: "ioctl_set_mac" in p.write.ins and "ioctl_get_mac" in p.read.ins,
    )

    def torn(result, detector) -> bool:
        if len(result.returns[1]) < 2:
            return False
        got = result.returns[1][1]
        raced = any(r.involves("ioctl_get_mac") for r in detector.reports())
        return raced and got not in (old_mac, new_mac)

    def run():
        return explore_until(ex, writer, reader, pmc, stop=torn)

    trials = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nFigure 3 (MAC #9): torn read observed after {trials} trials")
    benchmark.extra_info["trials_to_expose"] = trials
    assert trials is not None
    assert trials <= 32


def test_figure4_rhashtable_double_fetch(ex, benchmark):
    writer = prog(Call("msgget", (2,)), Call("msgctl", (2, 0)))
    reader = prog(Call("msgget", (2,)))
    pmc = pick_pmc(
        ex,
        writer,
        reader,
        lambda p: "rht_insert" in p.write.ins and "rht_ptr" in p.read.ins,
    )
    assert pmc.df_leader or True  # the read side is the double-fetch site

    def run():
        return explore_until(
            ex,
            writer,
            reader,
            pmc,
            stop=lambda result, _: result.panicked and "rht_" in result.panic_message,
        )

    trials = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nFigure 4 (rhashtable #1): exposed after {trials} trials")
    benchmark.extra_info["trials_to_expose"] = trials
    assert trials is not None
    assert trials <= 64
