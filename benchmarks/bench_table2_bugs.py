"""Experiment T2 — Table 2: bugs found by the full pipeline.

The paper's Table 2 lists 17 issues (14 bugs + 3 benign races) found in
Linux 5.3.10 / 5.12-rc3.  Here the full Snowboard pipeline runs over the
mini-kernel with the strategies combined (as for 5.3.10 in section 5.1)
and we report which catalogued bug analogues were discovered, at what
test index, and their type/triage — the same columns as Table 2.
"""

from __future__ import annotations


from repro.detect.catalog import spec_by_id
from repro.orchestrate.pipeline import DUPLICATE_PAIRING, RANDOM_PAIRING

# The combined battery (section 5.1: "All clustering strategies combined").
STRATEGIES = (
    "S-INS-PAIR",
    "S-INS",
    "S-CH-NULL",
    "S-CH-UNALIGNED",
    "S-CH-DOUBLE",
    "S-MEM",
    "S-CH",
    DUPLICATE_PAIRING,
    RANDOM_PAIRING,
)
BUDGET_PER_STRATEGY = 70


def run_combined_campaigns(snowboard):
    """Run every strategy with an equal budget; merge discovered bugs."""
    found = {}
    campaigns = []
    for strategy in STRATEGIES:
        campaign = snowboard.run_campaign(strategy, test_budget=BUDGET_PER_STRATEGY)
        campaigns.append(campaign)
        for bug_id, at in campaign.bugs_found().items():
            found.setdefault(bug_id, (strategy, at))
    return found, campaigns


def test_table2_bug_inventory(snowboard, benchmark):
    found, campaigns = benchmark.pedantic(
        run_combined_campaigns, args=(snowboard,), rounds=1, iterations=1
    )

    print("\n== Table 2 (reproduction): issues found by Snowboard ==")
    print(f"{'ID':<6} {'Type':<4} {'Triage':<8} {'Found by':<18} {'@test':<6} Summary")
    for bug_id in sorted(found):
        spec = spec_by_id(bug_id)
        strategy, at = found[bug_id]
        print(
            f"{bug_id:<6} {spec.bug_type:<4} {spec.triage.value:<8} "
            f"{strategy:<18} {at:<6} {spec.summary}"
        )
    missing = {f"SB{i:02d}" for i in range(1, 18)} - set(found)
    print(f"Missing from this run: {sorted(missing) or 'none'}")

    benchmark.extra_info["bugs_found"] = sorted(found)
    benchmark.extra_info["missing"] = sorted(missing)
    benchmark.extra_info["tests_executed"] = sum(c.tested_pmcs for c in campaigns)

    # Paper shape: the combined battery finds a broad set of distinct
    # issues, including non-data-race bugs (AV/OV) and benign races.
    assert len(found) >= 12
    types_found = {spec_by_id(b).bug_type for b in found}
    assert "AV" in types_found  # non-data-race atomicity violations
    assert "SB12" in found  # the Figure 1 order violation
    # The ubiquitous benign allocator race is found (paper: #13 found by
    # every strategy).
    assert "SB13" in found
