"""Experiment E9 — tenant-interleaving overhead of the campaign service.

The service's fairness mechanism is round-granular preemption: each
scheduler turn is one ``run_rounds(1, ...)`` call against the job's
checkpoint journal, so a turn pays journal open/replay-verify/close on
top of the round's real work.  This bench measures that tax: N identical
campaigns run back-to-back through solo ``run_rounds`` versus the same N
specs interleaved round-robin through :class:`CampaignService`, in
aggregate executions/minute.  The summaries must be bit-identical before
any figure is recorded — the overhead is only interesting because the
results are exactly the same.

Results are appended to ``BENCH_service.json`` at the repo root in the
shared trajectory shape.  Not wired into ``scripts/bench_gate.py``: the
figure is informational (E9), the correctness contract is owned by
``tests/test_service*.py`` and CI's ``smoke_service.py``.
"""

from __future__ import annotations

import os
import time
from typing import Dict

from bench_hot_path import append_record, load_results  # noqa: F401  (re-export)

from repro.orchestrate.pipeline import Snowboard
from repro.service import TERMINAL_STATES, JobSpec
from repro.service.daemon import CampaignService

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_PATH = os.path.join(REPO_ROOT, "BENCH_service.json")

QUICK_PARAMS = dict(jobs=3, rounds=2, round_budget=5, corpus_budget=60, trials=4)
FULL_PARAMS = dict(jobs=3, rounds=3, round_budget=6, corpus_budget=120, trials=8)


def _spec(seed: int, params: Dict) -> Dict:
    return dict(
        rounds=params["rounds"],
        round_budget=params["round_budget"],
        seed=seed,
        corpus_budget=params["corpus_budget"],
        trials=params["trials"],
        max_instructions=40_000,
    )


def measure_service(
    root: str, jobs: int, rounds: int, round_budget: int,
    corpus_budget: int, trials: int,
) -> Dict[str, object]:
    """Interleaved-service vs solo wall time for N identical-shape jobs."""
    params = dict(
        rounds=rounds, round_budget=round_budget,
        corpus_budget=corpus_budget, trials=trials,
    )
    spec_objs = {f"tenant-{i}": _spec(11 + 2 * i, params) for i in range(jobs)}

    # -- solo reference: each campaign back to back ----------------------
    solo_summaries = {}
    total_trials = 0
    start = time.perf_counter()
    for tenant, spec_obj in spec_objs.items():
        spec = JobSpec.from_obj(spec_obj)
        result = Snowboard(spec.config()).run_rounds(
            spec.rounds,
            round_budget=spec.round_budget,
            strategy=spec.strategy,
            scheduler_kind=spec.scheduler_kind,
            trials=spec.trials,
            workers=spec.workers,
            corpus_growth=spec.growth(),
            fleet=spec.fleet,
        )
        solo_summaries[tenant] = result.summary()
        total_trials += result.trials
    solo_wall = time.perf_counter() - start

    # -- the same specs interleaved through the service ------------------
    service = CampaignService(os.path.join(root, "svc"), mirror_trace=False)
    start = time.perf_counter()
    ids = {t: service.submit(t, s)["job_id"] for t, s in spec_objs.items()}
    while any(j["state"] not in TERMINAL_STATES for j in service.jobs()):
        assert service.run_turn(timeout=0.1)
    service_wall = time.perf_counter() - start

    for tenant, job_id in ids.items():
        assert service.summary(job_id) == solo_summaries[tenant], (
            f"{tenant} diverged under interleaving — overhead figures "
            f"are meaningless"
        )
    service.stop()

    overhead = (service_wall - solo_wall) / solo_wall * 100 if solo_wall else 0.0
    return {
        "jobs": jobs,
        "rounds_per_job": rounds,
        "total_trials": total_trials,
        "solo_wall_seconds": round(solo_wall, 4),
        "interleaved_wall_seconds": round(service_wall, 4),
        "solo_executions_per_min": round(total_trials / solo_wall * 60, 1),
        "interleaved_executions_per_min": round(
            total_trials / service_wall * 60, 1
        ),
        "interleaving_overhead_pct": round(overhead, 1),
    }


#: Informational figures (no gate): higher exec/min is better.
THROUGHPUT_KEYS = ("interleaved_executions_per_min",)


def test_service_interleaving_overhead(tmp_path):
    """Measure and record the full-mode E9 figures."""
    record = measure_service(str(tmp_path), **FULL_PARAMS)
    append_record(
        record, mode="full", label="bench_service", path=RESULTS_PATH
    )
    print(
        f"\nservice interleaving: {record['jobs']} tenants, "
        f"{record['interleaved_executions_per_min']:,.0f} exec/min vs "
        f"{record['solo_executions_per_min']:,.0f} solo "
        f"({record['interleaving_overhead_pct']:+.1f}% wall overhead, "
        f"bit-identical summaries)"
    )
    assert record["total_trials"] > 0
