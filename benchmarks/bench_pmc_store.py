"""Experiment — out-of-core tiered PMC store overhead (DESIGN.md §2.14).

The disk tier's claim is that a campaign whose access set dwarfs its
hot-tier budget keeps both its answer and most of its speed: with the
hot tier forced to a tenth of the in-memory access set, results stay
bit-identical and end-to-end throughput stays at >= 80% of the fully
in-memory campaign (EXPERIMENTS.md).  This bench measures that claim:

* executions/minute of the identical rounds-mode campaign, in-memory vs
  spilled at 1/10 hot capacity (the gated ratio),
* the raw overlap-scan slowdown of a spilled index at the same forced
  capacity, on the same access stream, and
* the tier traffic that proves the spill actually happened (evictions,
  cold probes, hot-tier hit rate).

Results are appended to ``BENCH_pmc_store.json`` at the repo root in the
same trajectory shape as ``BENCH_hot_path.json``; the file helpers are
imported from :mod:`bench_hot_path` so the formats cannot drift.
``scripts/bench_gate.py`` gates the throughput figures.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import tempfile
import time
from typing import Dict

from bench_hot_path import append_record, load_results  # noqa: F401  (re-export)

from repro.orchestrate.pipeline import Snowboard, SnowboardConfig
from repro.pmc.index import AccessIndex
from repro.pmc.store import AccessStore

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_PATH = os.path.join(REPO_ROOT, "BENCH_pmc_store.json")

# Quick mode: seconds, for the CI gate.
QUICK_CONFIG = SnowboardConfig(seed=7, corpus_budget=120, trials_per_pmc=8)
QUICK_PARAMS = dict(rounds=2, round_budget=4, corpus_growth=40, scan_reps=3)

# Full mode: the shared bench-session configuration (conftest.py).
FULL_PARAMS = dict(rounds=3, round_budget=6, corpus_growth=60, scan_reps=5)


def measure_pmc_store(
    snowboard: Snowboard,
    rounds: int,
    round_budget: int,
    corpus_growth: int,
    scan_reps: int,
) -> Dict[str, object]:
    """Measure spilled-vs-in-memory campaign and scan throughput.

    Both campaigns are fully deterministic (fixed seeds) and must agree
    bit for bit; only the wall-clock figures vary run to run.
    """
    config = snowboard.config

    # -- in-memory reference campaign ------------------------------------
    memory_sb = Snowboard(config).prepare()
    memory = memory_sb.run_rounds(rounds, round_budget, corpus_growth=corpus_growth)
    writes, reads = memory_sb.state.index.counts()
    access_set = writes + reads
    hot_capacity = max(1, access_set // 10)

    # -- the same campaign, spilled at 1/10 hot capacity -----------------
    spill_root = tempfile.mkdtemp(prefix="bench_pmc_store_")
    try:
        spilled_config = dataclasses.replace(
            config,
            pmc_spill_dir=os.path.join(spill_root, "pmcstore"),
            pmc_hot_records=hot_capacity,
        )
        spilled_sb = Snowboard(spilled_config).prepare()
        spilled = spilled_sb.run_rounds(
            rounds, round_budget, corpus_growth=corpus_growth
        )
        assert spilled.summary() == memory.summary()  # same answer, or no bench
        tier_stats = dict(spilled_sb.state.index.store.stats)

        # -- raw delta-scan throughput on the final access stream --------
        stream = [
            (access, profile.test_id)
            for profile in memory_sb.pmcset.profiles
            for access in profile.accesses
        ]
        start = time.perf_counter()
        memory_overlaps = 0
        for _ in range(scan_reps):
            index = AccessIndex()
            for access, test_id in stream:
                index.insert(access, test_id)
            memory_overlaps += sum(1 for _ in index.read_write_overlaps())
        memory_scan_wall = time.perf_counter() - start

        start = time.perf_counter()
        spilled_overlaps = 0
        for rep in range(scan_reps):
            store = AccessStore.open(os.path.join(spill_root, f"scan_{rep}"))
            index = AccessIndex(store=store, hot_capacity=hot_capacity)
            for access, test_id in stream:
                index.insert(access, test_id)
            spilled_overlaps += sum(1 for _ in index.read_write_overlaps())
        spilled_scan_wall = time.perf_counter() - start
        assert spilled_overlaps == memory_overlaps
    finally:
        shutil.rmtree(spill_root, ignore_errors=True)

    probes = tier_stats["hot_hits"] + tier_stats["cold_probes"]
    return {
        "access_set_records": access_set,
        "hot_capacity_records": hot_capacity,
        "memory_exec_per_min": round(memory.executions_per_minute, 1),
        "spilled_exec_per_min": round(spilled.executions_per_minute, 1),
        "spilled_fraction_of_memory": round(
            spilled.executions_per_minute / memory.executions_per_minute, 3
        )
        if memory.executions_per_minute
        else 0.0,
        "scan_overlaps": memory_overlaps,
        "memory_scan_wall_seconds": round(memory_scan_wall, 4),
        "spilled_scan_wall_seconds": round(spilled_scan_wall, 4),
        "evictions": tier_stats["evictions"],
        "cold_probes": tier_stats["cold_probes"],
        "hot_hit_rate": round(tier_stats["hot_hits"] / probes, 3) if probes else 0.0,
        "spilled_records": tier_stats["spilled_records"],
        "campaign_summary": spilled.summary(),
    }


#: The figures the regression gate compares (higher is better).
THROUGHPUT_KEYS = ("spilled_exec_per_min", "spilled_fraction_of_memory")


def test_pmc_store(snowboard):
    """Measure and record the full-mode tiered-store figures."""
    record = measure_pmc_store(snowboard, **FULL_PARAMS)
    append_record(record, mode="full", label="bench_pmc_store", path=RESULTS_PATH)
    print(
        f"\nspilled campaign at 1/10 hot capacity "
        f"({record['hot_capacity_records']}/{record['access_set_records']} "
        f"records): {record['spilled_exec_per_min']:,.0f} exec/min = "
        f"{record['spilled_fraction_of_memory']:.0%} of in-memory, "
        f"evictions={record['evictions']}, "
        f"hot rate={record['hot_hit_rate']:.0%}"
    )
    # The EXPERIMENTS.md criterion: a spilled campaign keeps >= 80% of
    # the in-memory throughput.
    assert record["spilled_fraction_of_memory"] >= 0.8
    assert record["evictions"] > 0
