"""Experiment R1 — the patched-kernel regression run.

Section 5.3.2: "Snowboard does not produce any false positive bug
reports because Snowboard tests PMCs dynamically ... and it only raises
an alarm when it observes issues in concurrent execution."  The sharpest
way to demonstrate that property is to point the full pipeline at a
kernel where every planted bug is repaired: identification still finds
thousands of PMCs (communication exists — it is just correctly
synchronised), yet zero alarms are raised over the same campaign that
finds 16+ issues on the buggy kernel.
"""

from __future__ import annotations


from repro.orchestrate.pipeline import Snowboard, SnowboardConfig

STRATEGIES = ("S-INS", "S-INS-PAIR", "Duplicate pairing")
BUDGET = 40


def run_fixed_campaigns():
    config = SnowboardConfig(
        seed=7, corpus_budget=260, trials_per_pmc=16, fixed_kernel=True
    )
    snowboard = Snowboard(config).prepare()
    campaigns = [
        snowboard.run_campaign(strategy, test_budget=BUDGET)
        for strategy in STRATEGIES
    ]
    return snowboard, campaigns


def test_fixed_kernel_raises_no_alarms(benchmark):
    snowboard, campaigns = benchmark.pedantic(
        run_fixed_campaigns, rounds=1, iterations=1
    )

    total_tests = sum(c.tested_pmcs for c in campaigns)
    total_trials = sum(c.trials for c in campaigns)
    total_observations = sum(len(c.records) for c in campaigns)
    print(
        f"\n== Patched-kernel regression ==\n"
        f"identified PMCs:          {len(snowboard.pmcset)}\n"
        f"concurrent tests executed: {total_tests}\n"
        f"interleaving trials:       {total_trials}\n"
        f"alarms raised:             {total_observations}"
    )
    benchmark.extra_info["pmcs"] = len(snowboard.pmcset)
    benchmark.extra_info["trials"] = total_trials
    benchmark.extra_info["alarms"] = total_observations

    # PMC analysis still predicts plenty of communication...
    assert len(snowboard.pmcset) > 500
    # ...and channels are still exercised (communication happens)...
    assert any(c.exercised_pmcs > 0 for c in campaigns)
    # ...but nothing is ever reported: no false positives by construction.
    assert total_observations == 0
    for campaign in campaigns:
        assert campaign.bugs_found() == {}
