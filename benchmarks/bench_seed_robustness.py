"""Robustness — the Table 3 headline across independent seeds.

The paper's central prioritisation claim (instruction clustering beats
value-sensitive clustering per test budget) should not hinge on one
lucky seed.  This bench rebuilds the whole pipeline from three
independent seeds — fresh fuzzing corpus, fresh PMC set — and checks the
ordering holds on each.
"""

from __future__ import annotations


from repro.orchestrate.pipeline import Snowboard, SnowboardConfig

SEEDS = (11, 23, 47)
TEST_BUDGET = 40


def run_seed(seed: int):
    config = SnowboardConfig(seed=seed, corpus_budget=220, trials_per_pmc=12)
    snowboard = Snowboard(config).prepare()
    s_ins = snowboard.run_campaign("S-INS", test_budget=TEST_BUDGET)
    s_ins_pair = snowboard.run_campaign("S-INS-PAIR", test_budget=TEST_BUDGET)
    s_full = snowboard.run_campaign("S-FULL", test_budget=TEST_BUDGET)
    return {
        "S-INS": set(s_ins.bugs_found()),
        "S-INS-PAIR": set(s_ins_pair.bugs_found()),
        "S-FULL": set(s_full.bugs_found()),
    }


def test_instruction_clustering_beats_s_full_across_seeds(benchmark):
    def run():
        return {seed: run_seed(seed) for seed in SEEDS}

    per_seed = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n== Seed robustness: bugs per strategy ==")
    wins = 0
    for seed, bugs in per_seed.items():
        ins_best = max(len(bugs["S-INS"]), len(bugs["S-INS-PAIR"]))
        print(
            f"seed {seed}: S-INS={len(bugs['S-INS'])} "
            f"S-INS-PAIR={len(bugs['S-INS-PAIR'])} S-FULL={len(bugs['S-FULL'])}"
        )
        if ins_best >= len(bugs["S-FULL"]):
            wins += 1
        # SB13 is found by every strategy from every seed.
        for strategy_bugs in bugs.values():
            assert "SB13" in strategy_bugs
    benchmark.extra_info["wins"] = wins

    # The ordering must hold for every seed (ties allowed).
    assert wins == len(SEEDS)
