"""Ablation — incidental-PMC adoption (Algorithm 2 line 27).

The paper amortises execution cost by adopting, after each trial, one
other known PMC whose accesses appeared in the trial.  DESIGN.md calls
out a scale effect we measured during development: on a mini-kernel the
adopted PMCs are dominated by hot allocator metadata, and the extra
switch points *defocus* the search.  This bench quantifies that: trials
needed to expose the rhashtable double fetch with adoption off,
capped, and uncapped.
"""

from __future__ import annotations

import pytest

from repro.fuzz.prog import Call, prog
from repro.kernel.kernel import boot_kernel
from repro.pmc.identify import identify_pmcs
from repro.profile.profiler import profile_from_result
from repro.sched.executor import Executor
from repro.sched.snowboard import SnowboardScheduler

TRIALS = 150


@pytest.fixture(scope="module")
def setup():
    kernel, snapshot = boot_kernel()
    ex = Executor(kernel, snapshot)
    writer = prog(Call("msgget", (2,)), Call("msgctl", (2, 0)))
    reader = prog(Call("msgget", (2,)))
    pw = profile_from_result(0, writer, ex.run_sequential(writer))
    pr = profile_from_result(1, reader, ex.run_sequential(reader))
    pmcset = identify_pmcs([pw, pr])
    target = next(
        p
        for p in pmcset
        if "rht_insert" in p.write.ins
        and "rht_ptr" in p.read.ins
        and (0, 1) in pmcset.pairs(p)
    )
    universe = [p for p in pmcset if (0, 1) in pmcset.pairs(p)]
    return ex, writer, reader, target, universe


def hits_in_budget(ex, writer, reader, scheduler) -> int:
    hits = 0
    for trial in range(TRIALS):
        scheduler.begin_trial(trial)
        result = ex.run_concurrent([writer, reader], scheduler=scheduler)
        if result.panicked:
            hits += 1
        scheduler.end_trial(result)
    return hits


def test_incidental_adoption_ablation(setup, benchmark):
    ex, writer, reader, target, universe = setup

    def run():
        off = hits_in_budget(
            ex, writer, reader, SnowboardScheduler(target, seed=5)
        )
        capped = hits_in_budget(
            ex,
            writer,
            reader,
            SnowboardScheduler(target, seed=5, universe=universe, max_adopted=3),
        )
        uncapped = hits_in_budget(
            ex,
            writer,
            reader,
            SnowboardScheduler(target, seed=5, universe=universe, max_adopted=10_000),
        )
        return off, capped, uncapped

    off, capped, uncapped = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n== Incidental-adoption ablation (hits in {TRIALS} trials) ==\n"
        f"adoption off:      {off}\n"
        f"adoption capped@3: {capped}\n"
        f"adoption uncapped: {uncapped}"
    )
    benchmark.extra_info.update(
        {"off": off, "capped": capped, "uncapped": uncapped}
    )
    # The design observation: focused search (adoption off) exposes the
    # bug at least as often as defocused search (uncapped adoption).
    assert off >= 1
    assert off >= uncapped
