"""Experiment E1 — section 5.3.2: PMC identification accuracy.

The paper measures how often a predicted PMC is actually exercised by
the generated concurrent test: 784.9K of 2153.5K PMC-generated inputs
(36 %) triggered the predicted memory channel in at least one trial.
We run a PMC-guided campaign and report the same metric, plus the
misprediction reasons the paper names (allocator divergence / control-
flow divergence both occur naturally here).
"""

from __future__ import annotations


from repro.orchestrate.results import CampaignResult

TEST_BUDGET = 80


def run_accuracy_campaign(snowboard) -> CampaignResult:
    return snowboard.run_campaign("S-INS-PAIR", test_budget=TEST_BUDGET)


def test_pmc_accuracy(snowboard, benchmark):
    campaign = benchmark.pedantic(
        run_accuracy_campaign, args=(snowboard,), rounds=1, iterations=1
    )
    accuracy = campaign.accuracy
    print(
        f"\n== PMC accuracy (section 5.3.2) ==\n"
        f"tested PMCs: {campaign.tested_pmcs}, exercised: "
        f"{campaign.exercised_pmcs}, accuracy: {accuracy:.1%} "
        f"(paper: ~36% of PMC-generated inputs)"
    )
    benchmark.extra_info["tested"] = campaign.tested_pmcs
    benchmark.extra_info["exercised"] = campaign.exercised_pmcs
    benchmark.extra_info["accuracy"] = round(accuracy, 3)

    # Shape: predictions are a moderate fraction — far above random noise,
    # far below perfect (mispredictions from allocator/control-flow
    # divergence are expected and healthy).
    assert 0.10 <= accuracy <= 0.90


def test_mispredictions_exist_from_allocator_divergence(snowboard):
    """When both tests allocate, each gets a different chunk than profiled
    (the first misprediction class of section 5.3.2)."""

    heap_base = snowboard.kernel.machine.regions.heap_base
    heap_end = heap_base + snowboard.kernel.machine.regions.heap_size
    heap_pmcs = [
        pmc
        for pmc in snowboard.pmcset
        if heap_base <= pmc.write.addr < heap_end
    ]
    # Heap-object PMCs exist: these are exactly the ones whose channel can
    # mispredict when allocation orders diverge concurrently.
    assert heap_pmcs
