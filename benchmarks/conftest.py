"""Shared benchmark fixtures.

One prepared Snowboard instance (booted kernel, fuzzed corpus, profiles,
identified PMCs) is shared across the whole benchmark session — the
equivalent of the paper's per-machine Snowboard instance.  Campaign
benches rebuild their own campaign state from it but never re-fuzz.
"""

from __future__ import annotations

import pytest

from repro.orchestrate.pipeline import Snowboard, SnowboardConfig

# The benchmark-scale configuration: big enough that every strategy has
# clusters to choose from, small enough that the full battery finishes in
# minutes on one core.
BENCH_CONFIG = SnowboardConfig(
    seed=7,
    corpus_budget=260,
    trials_per_pmc=16,
    max_instructions=60_000,
)


@pytest.fixture(scope="session")
def snowboard() -> Snowboard:
    return Snowboard(BENCH_CONFIG).prepare()


@pytest.fixture(scope="session")
def executor(snowboard):
    return snowboard.executor


@pytest.fixture(scope="session")
def kernel(snowboard):
    return snowboard.kernel
