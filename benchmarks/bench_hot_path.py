"""Experiment — interpreter hot-path throughput (the §5.4 lever).

Every Snowboard stage is a multiplier over per-instruction executor
cost: ~130k sequential profiles and millions of concurrent trials all
funnel through the same interpreter loop (Figure 2), and the paper's
own bottleneck analysis is executions/minute (§5.4, 193.8 exec/min).
This bench measures the three throughputs that loop determines:

* sequential profiling instructions/s (Stage 1, no scheduler/detector),
* concurrent trial instructions/s (Stage 4, scheduler + race detector),
* end-to-end executions/min on a fixed campaign.

Results are appended to ``BENCH_hot_path.json`` at the repo root — the
perf trajectory record ``scripts/bench_gate.py`` gates regressions
against.  The measurement helpers here are imported by the gate script,
so bench and gate can never drift apart.
"""

from __future__ import annotations

import datetime
import json
import os
import time
from typing import Dict, Optional

from repro.orchestrate.pipeline import Snowboard, SnowboardConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_PATH = os.path.join(REPO_ROOT, "BENCH_hot_path.json")

# Quick mode: small corpus, small campaign — seconds, for the CI gate.
QUICK_CONFIG = SnowboardConfig(seed=7, corpus_budget=120, trials_per_pmc=8)
QUICK_PARAMS = dict(seq_reps=6, test_budget=10, trials=8)

# Full mode: the shared bench-session configuration (conftest.py).
FULL_PARAMS = dict(seq_reps=10, test_budget=24, trials=16)


def measure_hot_path(
    snowboard: Snowboard, seq_reps: int, test_budget: int, trials: int
) -> Dict[str, object]:
    """Measure the three hot-path throughputs on a prepared instance.

    The workload is fully deterministic (fixed seeds); only the
    wall-clock figures vary run to run.
    """
    snowboard.prepare()
    executor = snowboard.executor
    programs = [entry.program for entry in snowboard.corpus]

    # -- sequential profiling throughput (Stage 1's inner loop) ----------
    start = time.perf_counter()
    seq_instructions = 0
    for _ in range(seq_reps):
        for program in programs:
            result = executor.run_sequential(program)
            seq_instructions += result.instructions
    seq_wall = time.perf_counter() - start

    # -- concurrent trial throughput (Stage 4's inner loop) --------------
    campaign = snowboard.run_campaign(
        "S-INS-PAIR", test_budget=test_budget, trials=trials
    )

    return {
        "sequential_instructions": seq_instructions,
        "sequential_wall_seconds": round(seq_wall, 4),
        "sequential_ips": round(seq_instructions / seq_wall, 1),
        "concurrent_instructions": campaign.instructions,
        "concurrent_wall_seconds": round(campaign.wall_seconds, 4),
        "concurrent_ips": round(campaign.instructions / campaign.wall_seconds, 1),
        "executions_per_min": round(campaign.executions_per_minute, 1),
        "campaign_trials": campaign.trials,
        "campaign_summary": campaign.summary(),
    }


#: The figures the regression gate compares (higher is better).
THROUGHPUT_KEYS = ("sequential_ips", "concurrent_ips", "executions_per_min")


def load_results(path: str = RESULTS_PATH) -> Dict[str, object]:
    """The accumulated perf trajectory ({"baseline": {...}, "records": [...]})."""
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    return {"baseline": {}, "records": []}


def append_record(
    record: Dict[str, object],
    mode: str,
    label: str,
    path: str = RESULTS_PATH,
    set_baseline: bool = False,
    date: Optional[str] = None,
) -> Dict[str, object]:
    """Append one dated record to the trajectory file.

    ``mode`` ("quick" or "full") namespaces the baseline: the gate only
    compares records measured under the same workload.  The first record
    of a mode (or ``set_baseline=True``) becomes that mode's baseline.
    """
    results = load_results(path)
    entry = dict(record)
    entry["mode"] = mode
    entry["label"] = label
    entry["date"] = date or datetime.date.today().isoformat()
    results.setdefault("records", []).append(entry)
    baselines = results.setdefault("baseline", {})
    if set_baseline or mode not in baselines:
        baselines[mode] = entry
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return entry


def test_hot_path_throughput(snowboard):
    """Measure and record the full-mode hot-path throughput."""
    record = measure_hot_path(snowboard, **FULL_PARAMS)
    append_record(record, mode="full", label="bench_hot_path")
    print(
        f"\nsequential: {record['sequential_ips']:,.0f} instr/s  "
        f"concurrent: {record['concurrent_ips']:,.0f} instr/s  "
        f"campaign: {record['executions_per_min']:,.0f} exec/min"
    )
    # Sanity floor, not a perf assertion (the gate owns regressions):
    # the workload must actually have executed.
    assert record["sequential_instructions"] > 0
    assert record["campaign_trials"] > 0
