"""Experiment E2 — section 5.4: analysis-pipeline performance.

The paper reports profiling 129,876 sequential tests in ~40 h,
identification + clustering in <80 h (or <5 h without S-FULL), and a
concurrent-test generation throughput >1000 tests/s.  On the simulated
kernel the absolute numbers are simulator-scale; what we reproduce is
the *relationship*: clustering without S-FULL is far cheaper than with
it, and test generation throughput dwarfs test execution throughput.
"""

from __future__ import annotations

import random


from repro.fuzz.prog import Call, prog
from repro.pmc.clustering import ALL_STRATEGIES, STRATEGIES_BY_NAME
from repro.pmc.identify import identify_pmcs
from repro.pmc.selection import cluster_pmcs, ordered_exemplars
from repro.profile.profiler import Profiler


def test_profiling_throughput(snowboard, benchmark):
    """Sequential tests profiled per second."""
    profiler = Profiler(snowboard.executor)
    programs = snowboard.corpus.programs()[:30]

    def run():
        for i, program in enumerate(programs):
            profiler.profile(i, program)

    benchmark.pedantic(run, rounds=3, iterations=1)
    rate = len(programs) / benchmark.stats["mean"]
    print(f"\nprofiling throughput: {rate:.0f} tests/s")
    benchmark.extra_info["tests_per_second"] = round(rate, 1)


def test_pmc_identification_throughput(snowboard, benchmark):
    """Algorithm 1 over the full corpus profile set."""
    profiles = snowboard.profiles

    def run():
        return identify_pmcs(profiles)

    pmcset = benchmark.pedantic(run, rounds=3, iterations=1)
    rate = pmcset.overlaps_scanned / benchmark.stats["mean"]
    print(
        f"\nidentification: {len(pmcset)} PMCs from "
        f"{pmcset.overlaps_scanned} overlaps; {rate:.0f} overlaps/s"
    )
    benchmark.extra_info["pmcs"] = len(pmcset)
    benchmark.extra_info["overlaps_per_second"] = round(rate)


def test_clustering_cost_with_and_without_s_full(snowboard, benchmark):
    """Paper: S-FULL dominates clustering cost and is not time well spent."""
    import time

    pmcs = snowboard.pmcset.all_pmcs()

    def cluster_all():
        for strategy in ALL_STRATEGIES:
            cluster_pmcs(pmcs, strategy)

    benchmark.pedantic(cluster_all, rounds=3, iterations=1)

    start = time.perf_counter()
    cluster_pmcs(pmcs, STRATEGIES_BY_NAME["S-FULL"])
    with_full = time.perf_counter() - start

    start = time.perf_counter()
    for strategy in ALL_STRATEGIES:
        if strategy.name != "S-FULL":
            cluster_pmcs(pmcs, strategy)
    without_full = time.perf_counter() - start

    nclusters_full = len(cluster_pmcs(pmcs, STRATEGIES_BY_NAME["S-FULL"]))
    print(
        f"\nclustering: S-FULL alone {with_full * 1e3:.1f} ms "
        f"({nclusters_full} clusters) vs all-others {without_full * 1e3:.1f} ms"
    )
    benchmark.extra_info["s_full_clusters"] = nclusters_full
    # S-FULL yields (near-)maximal cluster counts: the costliest strategy.
    for strategy in ALL_STRATEGIES:
        assert nclusters_full >= len(cluster_pmcs(pmcs, strategy)) or strategy.name == "S-FULL"


def test_generation_vs_execution_throughput(snowboard, benchmark):
    """Paper: generation >1000 tests/s, far above execution throughput."""
    import time

    pmcs = snowboard.pmcset.all_pmcs()
    strategy = STRATEGIES_BY_NAME["S-INS-PAIR"]

    def generate():
        rng = random.Random(0)
        exemplars = ordered_exemplars(pmcs, strategy, rng)
        tests = []
        for pmc in exemplars:
            pair = rng.choice(snowboard.pmcset.pairs(pmc))
            tests.append(pair)
        return tests

    tests = benchmark.pedantic(generate, rounds=3, iterations=1)
    generation_rate = len(tests) / benchmark.stats["mean"]

    # Execution rate: run a handful of concurrent tests and time them.
    program = prog(Call("msgget", (1,)), Call("msgsnd", (1, 2)))
    start = time.perf_counter()
    nexec = 20
    for _ in range(nexec):
        snowboard.executor.run_concurrent([program, program])
    execution_rate = nexec / (time.perf_counter() - start)

    print(
        f"\ngeneration: {generation_rate:.0f} tests/s vs execution: "
        f"{execution_rate:.0f} tests/s"
    )
    benchmark.extra_info["generation_per_second"] = round(generation_rate)
    benchmark.extra_info["execution_per_second"] = round(execution_rate)
    assert generation_rate > execution_rate  # the paper's relationship


def test_per_trial_reset_speedup(snowboard, benchmark):
    """Dirty-page restore vs full-copy restore on the standard campaign.

    Every trial restores the boot snapshot; before dirty-page tracking
    that meant rebuilding every mapped page (~4k pages), dwarfing the work
    of a typical trial that dirties a handful.  Run the same campaign
    workload both ways and compare the per-trial reset cost — the
    simulator-relative analogue of the paper's §5.4 throughput table.
    """
    budget = 12

    def run(full_restore):
        snowboard.executor.full_restore = full_restore
        try:
            return snowboard.run_campaign("S-INS-PAIR", test_budget=budget)
        finally:
            snowboard.executor.full_restore = False

    before = run(full_restore=True)
    after = benchmark.pedantic(run, args=(False,), rounds=1, iterations=1)

    # Identical campaign either way: the restore path is behaviour-neutral.
    assert after.summary() == before.summary()

    reset_before = before.restore_seconds / before.trials
    reset_after = after.restore_seconds / after.trials
    speedup = reset_before / reset_after
    print(
        f"\nper-trial reset: full-copy {reset_before * 1e6:.0f} us "
        f"({before.pages_per_trial:.0f} pages) vs dirty-page "
        f"{reset_after * 1e6:.0f} us ({after.pages_per_trial:.1f} pages) "
        f"— {speedup:.1f}x"
    )
    print(
        f"executions/min: {before.executions_per_minute:.0f} (full copy) -> "
        f"{after.executions_per_minute:.0f} (dirty pages); restore fraction "
        f"{before.restore_fraction:.1%} -> {after.restore_fraction:.1%}"
    )
    benchmark.extra_info["reset_speedup"] = round(speedup, 1)
    benchmark.extra_info["pages_per_trial"] = round(after.pages_per_trial, 1)
    benchmark.extra_info["executions_per_minute"] = round(after.executions_per_minute)
    assert after.pages_per_trial < before.pages_per_trial / 10
    assert speedup >= 3.0


def test_parallel_campaign_matches_serial(snowboard, benchmark):
    """Stage 4 over the work queue: same seed, same bug set as serial."""
    budget = 12
    serial = snowboard.run_campaign("S-INS-PAIR", test_budget=budget)
    parallel = benchmark.pedantic(
        snowboard.run_campaign,
        args=("S-INS-PAIR",),
        kwargs={"test_budget": budget, "workers": 2},
        rounds=1,
        iterations=1,
    )
    print(
        f"\nserial {serial.executions_per_minute:.0f} exec/min vs parallel "
        f"(2 workers) {parallel.executions_per_minute:.0f} exec/min; "
        f"bugs {sorted(parallel.bugs_found())}"
    )
    benchmark.extra_info["serial_per_minute"] = round(serial.executions_per_minute)
    benchmark.extra_info["parallel_per_minute"] = round(parallel.executions_per_minute)
    assert parallel.bugs_found() == serial.bugs_found()
    assert parallel.summary() == serial.summary()
    assert parallel.task_failures == 0
