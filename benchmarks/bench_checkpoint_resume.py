"""Experiment — crash-safe campaigns: checkpoint and resume overhead.

The paper's campaigns ran for weeks across a GCP fleet (§4.4.1, §5.4),
which is only viable when surviving a crash is cheap: journaling each
merged Stage-4 task must be effectively free, and resuming a killed
campaign must cost a small fraction of re-running it.  This bench
measures both and asserts the resume overhead stays under 10% of the
campaign's Stage-4 wall time.
"""

from __future__ import annotations

import time

from repro.orchestrate.pipeline import Snowboard

BUDGET = 12
STRATEGY = "S-INS-PAIR"


def test_checkpoint_write_overhead(snowboard, tmp_path):
    """Journaling every task must not meaningfully slow the campaign."""
    plain = snowboard.run_campaign(STRATEGY, test_budget=BUDGET)
    path = str(tmp_path / "journal.jsonl")
    journaled = snowboard.run_campaign(
        STRATEGY, test_budget=BUDGET, checkpoint_path=path
    )
    assert journaled.summary() == plain.summary()
    overhead = journaled.wall_seconds - plain.wall_seconds
    print(
        f"\njournaling overhead: {overhead * 1000:+.1f} ms on a "
        f"{plain.wall_seconds:.2f} s campaign "
        f"({overhead / plain.wall_seconds:+.1%})"
    )
    # Generous bound: JSONL appends are microseconds per task; anything
    # above 10% (+ scheduling noise floor) means journaling regressed.
    assert journaled.wall_seconds < plain.wall_seconds * 1.10 + 0.05


def test_resume_overhead_under_10_percent(snowboard, tmp_path):
    """Resuming a fully-journaled campaign is pure journal replay; it
    must cost < 10% of the campaign's execution wall time."""
    path = str(tmp_path / "journal.jsonl")
    full = snowboard.run_campaign(STRATEGY, test_budget=BUDGET, checkpoint_path=path)

    # A fresh instance is the new-process analogue.  prepare() (boot +
    # fuzz + profile) happens before the timer: a resuming process pays
    # it regardless of checkpointing, so it is not resume overhead.
    resumer = Snowboard(snowboard.config).prepare()
    start = time.perf_counter()
    resumed = resumer.run_campaign(
        STRATEGY, test_budget=BUDGET, checkpoint_path=path, resume=True
    )
    resume_wall = time.perf_counter() - start

    assert resumed.summary() == full.summary()
    print(
        f"\nresume replay: {resume_wall * 1000:.1f} ms vs "
        f"{full.wall_seconds:.2f} s campaign "
        f"({resume_wall / full.wall_seconds:.1%})"
    )
    assert resume_wall < 0.10 * full.wall_seconds
