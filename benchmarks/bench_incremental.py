"""Experiment — incremental campaign engine (delta identification payoff).

The round-based engine's claim is algorithmic: when a round adds k
profiles to a corpus of n, ``identify_delta`` scans only the overlaps
the new accesses introduce, while re-running ``identify_pmcs`` from
scratch rescans all O(n^2) of them.  This bench measures that claim two
ways:

* per-round Stage-2 wall time, delta vs full re-identify, on the same
  stream of profiles (the speedup the engine buys), and
* end-to-end executions/minute of a rounds-mode campaign, so the gate
  catches the round plumbing itself (state threading, history filtering,
  round spans) getting expensive.

Results are appended to ``BENCH_incremental.json`` at the repo root in
the same trajectory shape as ``BENCH_hot_path.json``; the file helpers
are imported from :mod:`bench_hot_path` so the formats cannot drift.
``scripts/bench_gate.py`` gates both benches.
"""

from __future__ import annotations

import os
import time
from typing import Dict

from bench_hot_path import append_record, load_results  # noqa: F401  (re-export)

from repro.orchestrate.pipeline import Snowboard, SnowboardConfig
from repro.pmc.identify import PmcSet, identify_delta, identify_pmcs
from repro.pmc.index import AccessIndex

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_PATH = os.path.join(REPO_ROOT, "BENCH_incremental.json")

# Quick mode: seconds, for the CI gate.
QUICK_CONFIG = SnowboardConfig(seed=7, corpus_budget=120, trials_per_pmc=8)
QUICK_PARAMS = dict(chunks=6, identify_reps=3, rounds=3, round_budget=4)

# Full mode: the shared bench-session configuration (conftest.py).
FULL_PARAMS = dict(chunks=10, identify_reps=5, rounds=4, round_budget=8)


def measure_incremental(
    snowboard: Snowboard,
    chunks: int,
    identify_reps: int,
    rounds: int,
    round_budget: int,
) -> Dict[str, object]:
    """Measure delta-identify speedup and rounds-mode throughput.

    The profile stream and campaign are fully deterministic (fixed
    seeds); only the wall-clock figures vary run to run.
    """
    snowboard.prepare()
    profiles = list(snowboard.profiles)
    size = max(1, len(profiles) // chunks)
    batches = [profiles[i : i + size] for i in range(0, len(profiles), size)]

    # -- Stage 2, incremental: one persistent index, delta per round -----
    start = time.perf_counter()
    for _ in range(identify_reps):
        pmcset = PmcSet()
        index = AccessIndex()
        for batch in batches:
            identify_delta(pmcset, index, batch)
    delta_wall = time.perf_counter() - start

    # -- Stage 2, naive: full re-identify over the whole prefix ----------
    start = time.perf_counter()
    for _ in range(identify_reps):
        seen = []
        for batch in batches:
            seen.extend(batch)
            full = identify_pmcs(seen)
    full_wall = time.perf_counter() - start

    assert set(full.pmcs) == set(pmcset.pmcs)  # same answer, or no bench

    # -- end-to-end rounds-mode campaign ---------------------------------
    fresh = Snowboard(snowboard.config)
    campaign = fresh.run_rounds(rounds, round_budget)

    return {
        "profiles": len(profiles),
        "rounds_simulated": len(batches),
        "delta_identify_wall_seconds": round(delta_wall, 4),
        "full_identify_wall_seconds": round(full_wall, 4),
        "delta_speedup": round(full_wall / delta_wall, 2) if delta_wall else 0.0,
        "pmcs_identified": len(pmcset),
        "campaign_rounds": rounds,
        "campaign_trials": campaign.trials,
        "campaign_pmcs": len(fresh.pmcset),
        "rounds_executions_per_min": round(campaign.executions_per_minute, 1),
        "campaign_summary": campaign.summary(),
    }


#: The figures the regression gate compares (higher is better).
THROUGHPUT_KEYS = ("delta_speedup", "rounds_executions_per_min")


def test_incremental_engine(snowboard):
    """Measure and record the full-mode incremental-engine figures."""
    record = measure_incremental(snowboard, **FULL_PARAMS)
    append_record(
        record, mode="full", label="bench_incremental", path=RESULTS_PATH
    )
    print(
        f"\ndelta identify: {record['delta_speedup']:.1f}x over full "
        f"re-identify ({record['rounds_simulated']} rounds, "
        f"{record['profiles']} profiles)  "
        f"rounds campaign: {record['rounds_executions_per_min']:,.0f} exec/min"
    )
    # Sanity floor, not a perf assertion (the gate owns regressions).
    assert record["pmcs_identified"] > 0
    assert record["campaign_trials"] > 0
