"""Ablation — strategy composition (section 4.3, final paragraph).

The paper sketches two compositions: iterative application ("strategy A,
then strategy B excluding PMCs already tested") and subdividing large
clusters with a finer strategy.  This bench compares, under one test
budget:

* plain S-INS-PAIR (the paper's best single strategy),
* iterative S-INS-PAIR → S-CH-NULL → S-CH-DOUBLE,
* S-MEM subdivided by S-INS-PAIR (big memory clusters split by pair).
"""

from __future__ import annotations

import random


from repro.orchestrate.results import CampaignResult
from repro.pmc.clustering import STRATEGIES_BY_NAME
from repro.pmc.composition import iterative_exemplars, subdivided_exemplars
from repro.pmc.selection import ordered_exemplars

TEST_BUDGET = 45


def run_campaign_over(snowboard, name, exemplars):
    campaign = CampaignResult(strategy=name, exemplar_pmcs=len(exemplars))
    tests = snowboard.tests_from_exemplars(exemplars[:TEST_BUDGET])
    for test in tests:
        snowboard.execute_test(test, campaign)
    return campaign


def test_composition_vs_plain(snowboard, benchmark):
    pmcs = snowboard.pmcset.all_pmcs()
    ins_pair = STRATEGIES_BY_NAME["S-INS-PAIR"]
    ch_null = STRATEGIES_BY_NAME["S-CH-NULL"]
    ch_double = STRATEGIES_BY_NAME["S-CH-DOUBLE"]
    s_mem = STRATEGIES_BY_NAME["S-MEM"]

    def run():
        plain = run_campaign_over(
            snowboard,
            "plain S-INS-PAIR",
            ordered_exemplars(pmcs, ins_pair, random.Random(1)),
        )
        iterative = run_campaign_over(
            snowboard,
            "iterative 3-strategy",
            [p for _, p in iterative_exemplars(
                pmcs, [ins_pair, ch_null, ch_double], random.Random(1),
                limit_per_strategy=TEST_BUDGET,
            )],
        )
        subdivided = run_campaign_over(
            snowboard,
            "S-MEM / S-INS-PAIR",
            subdivided_exemplars(pmcs, s_mem, ins_pair, threshold=8, rng=random.Random(1)),
        )
        return plain, iterative, subdivided

    plain, iterative, subdivided = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n== Strategy composition (section 4.3) ==")
    for campaign in (plain, iterative, subdivided):
        bugs = sorted(campaign.bugs_found())
        print(
            f"{campaign.strategy:<22} exemplars={campaign.exemplar_pmcs:<6} "
            f"tested={campaign.tested_pmcs:<4} bugs={len(bugs)}: {', '.join(bugs)}"
        )
    benchmark.extra_info["plain_bugs"] = sorted(plain.bugs_found())
    benchmark.extra_info["iterative_bugs"] = sorted(iterative.bugs_found())
    benchmark.extra_info["subdivided_bugs"] = sorted(subdivided.bugs_found())

    # Composition never selects fewer exemplars than its first strategy
    # alone, and each variant finds bugs under this budget.
    assert iterative.exemplar_pmcs >= min(plain.exemplar_pmcs, TEST_BUDGET)
    for campaign in (plain, iterative, subdivided):
        assert campaign.distinct_bugs >= 1
