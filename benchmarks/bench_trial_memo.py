"""Experiment — sequential-prefix fork memoization and commuting pruning.

Stage 4 re-executes the writer's deterministic sequential prefix on
every trial of a task; prefix fork memoization (DESIGN §2.15) replaces
that re-execution with a delta-snapshot fork, and commuting-schedule
pruning drops trials whose first switch provably lands in an
already-tested commuting class.  This bench pins the two acceptance
figures of the optimisation:

* ``memo_speedup`` — campaign executions/min with memoization over the
  identical campaign without it (same seeds, bit-identical results).
  Floor: 1.3x.
* ``instr_per_obs_reduction_pct`` — how many fewer instructions the
  memoized *and pruned* campaign spends per observation than the
  unoptimised one, with the bug table and observation count unchanged.
  Floor: 30%, and any Table-2 yield loss fails the measurement outright.

Results are appended to ``BENCH_trial_memo.json`` at the repo root;
``scripts/bench_gate.py`` gates both figures against the stored
quick-mode baseline like every other trajectory.
"""

from __future__ import annotations

import os
import time
from typing import Dict

from bench_hot_path import append_record, load_results  # noqa: F401  (re-exported)
from repro.orchestrate.pipeline import Snowboard, SnowboardConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_PATH = os.path.join(REPO_ROOT, "BENCH_trial_memo.json")

# Quick mode: the CI-gate workload.  trials_per_pmc is deliberately above
# the golden-test budget — memoization amortises the prefix recording
# over a task's trials, and pruning needs enough budget to bite.
QUICK_PARAMS = dict(
    seed=7, corpus_budget=120, trials_per_pmc=24, test_budget=10, reps=2
)

# Full mode: a longer campaign for the bench session.
FULL_PARAMS = dict(
    seed=7, corpus_budget=120, trials_per_pmc=48, test_budget=10, reps=2
)

#: Acceptance floors (ISSUE 8): memoization alone must buy 1.3x
#: executions/min; memoization+pruning must cut instructions per
#: observation by 30% without losing a single bug or observation.
SPEEDUP_FLOOR = 1.3
REDUCTION_FLOOR_PCT = 30.0

#: The figures the regression gate compares (higher is better).
THROUGHPUT_KEYS = ("memo_speedup", "instr_per_obs_reduction_pct", "memo_executions_per_min")


def _campaign(seed, corpus_budget, trials_per_pmc, test_budget, prefix_fork, prune):
    config = SnowboardConfig(
        seed=seed,
        corpus_budget=corpus_budget,
        trials_per_pmc=trials_per_pmc,
        prefix_fork=prefix_fork,
        prune_commuting=prune,
    )
    snowboard = Snowboard(config).prepare()
    start = time.perf_counter()
    campaign = snowboard.run_campaign("S-INS-PAIR", test_budget=test_budget)
    return campaign, time.perf_counter() - start


def _best_of(reps, **kwargs):
    """Best wall time over ``reps`` identical runs (noise suppression);
    the campaign itself is deterministic, so any run's summary serves."""
    best = None
    for _ in range(max(1, reps)):
        campaign, wall = _campaign(**kwargs)
        if best is None or wall < best[1]:
            best = (campaign, wall)
    return best


def measure_trial_memo(
    seed: int, corpus_budget: int, trials_per_pmc: int, test_budget: int, reps: int = 2
) -> Dict[str, object]:
    """Measure both acceptance figures on one fixed-seed campaign.

    Raises AssertionError when a floor is missed or pruning loses yield —
    the bench is the acceptance test, not just a trajectory writer.
    """
    workload = dict(
        seed=seed,
        corpus_budget=corpus_budget,
        trials_per_pmc=trials_per_pmc,
        test_budget=test_budget,
    )
    baseline, base_wall = _best_of(reps, prefix_fork=False, prune=False, **workload)
    memoized, memo_wall = _best_of(reps, prefix_fork=True, prune=False, **workload)
    pruned, pruned_wall = _best_of(reps, prefix_fork=True, prune=True, **workload)

    base_summary = baseline.summary()
    memo_summary = memoized.summary()
    pruned_summary = pruned.summary()

    # Memoization is invisible: identical campaign, cheaper wall clock.
    assert memo_summary == base_summary, "memoization changed campaign results"
    memo_epm = memoized.trials / memo_wall * 60.0
    base_epm = baseline.trials / base_wall * 60.0
    speedup = memo_epm / base_epm

    # Pruning preserves yield: same bugs, same observations, fewer trials.
    assert pruned_summary["bugs"] == base_summary["bugs"], (
        f"pruning lost bugs: {base_summary['bugs']} -> {pruned_summary['bugs']}"
    )
    assert pruned_summary["observations"] == base_summary["observations"], (
        "pruning lost observations"
    )
    ipo_base = baseline.instructions / max(1, base_summary["observations"])
    ipo_pruned = pruned.instructions / max(1, pruned_summary["observations"])
    reduction_pct = (1.0 - ipo_pruned / ipo_base) * 100.0

    assert speedup >= SPEEDUP_FLOOR, (
        f"memoization speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )
    assert reduction_pct >= REDUCTION_FLOOR_PCT, (
        f"instr/obs reduction {reduction_pct:.1f}% below the "
        f"{REDUCTION_FLOOR_PCT}% floor"
    )

    return {
        "baseline_wall_seconds": round(base_wall, 4),
        "memo_wall_seconds": round(memo_wall, 4),
        "pruned_wall_seconds": round(pruned_wall, 4),
        "baseline_executions_per_min": round(base_epm, 1),
        "memo_executions_per_min": round(memo_epm, 1),
        "memo_speedup": round(speedup, 3),
        "baseline_trials": baseline.trials,
        "pruned_trials": pruned.trials,
        "baseline_instructions": baseline.instructions,
        "pruned_instructions": pruned.instructions,
        "instr_per_obs_baseline": round(ipo_base, 1),
        "instr_per_obs_pruned": round(ipo_pruned, 1),
        "instr_per_obs_reduction_pct": round(reduction_pct, 1),
        "bugs": dict(base_summary["bugs"]),
        "observations": base_summary["observations"],
    }


def test_trial_memo_throughput():
    """Measure and record the full-mode memoization/pruning figures."""
    record = measure_trial_memo(**FULL_PARAMS)
    append_record(record, mode="full", label="bench_trial_memo", path=RESULTS_PATH)
    print(
        f"\nmemo speedup: {record['memo_speedup']:.2f}x  "
        f"instr/obs: {record['instr_per_obs_baseline']:,.0f} -> "
        f"{record['instr_per_obs_pruned']:,.0f} "
        f"(-{record['instr_per_obs_reduction_pct']:.0f}%)  "
        f"trials: {record['baseline_trials']} -> {record['pruned_trials']}"
    )
    assert record["baseline_trials"] > record["pruned_trials"]
