"""Experiment T3 — Table 3: per-strategy testing results.

One campaign per concurrent-test generation method with an equal budget
(the paper ran 11 Snowboard instances for a week each; we run each
method over the same corpus with the same test budget) and report the
same columns: exemplar PMCs (clusters), tested PMCs, and the issues
found with their time-to-find (in tests executed).

Shape checks mirror the paper's conclusions (section 5.3.1):
instruction-based clustering (S-INS / S-INS-PAIR) finds the most bugs,
the ubiquitous benign allocator race (#13 analogue) is found by
everything including the baselines, and uncommon-first ordering is at
least as productive as random cluster order.
"""

from __future__ import annotations


from repro.orchestrate.pipeline import (
    DUPLICATE_PAIRING,
    RANDOM_PAIRING,
    RANDOM_S_INS_PAIR,
)
from repro.orchestrate.results import TABLE3_HEADER

METHODS = (
    "S-FULL",
    "S-CH",
    "S-CH-NULL",
    "S-CH-UNALIGNED",
    "S-CH-DOUBLE",
    "S-INS",
    "S-INS-PAIR",
    "S-MEM",
    RANDOM_S_INS_PAIR,
    RANDOM_PAIRING,
    DUPLICATE_PAIRING,
)
TEST_BUDGET = 60


def run_all_methods(snowboard):
    return {
        method: snowboard.run_campaign(method, test_budget=TEST_BUDGET)
        for method in METHODS
    }


def test_table3_strategy_comparison(snowboard, benchmark):
    campaigns = benchmark.pedantic(
        run_all_methods, args=(snowboard,), rounds=1, iterations=1
    )

    print("\n== Table 3 (reproduction): results per generation method ==")
    print(TABLE3_HEADER)
    for campaign in campaigns.values():
        print(campaign.table_row())

    bugs = {method: set(c.bugs_found()) for method, c in campaigns.items()}
    benchmark.extra_info["bugs_per_method"] = {m: sorted(b) for m, b in bugs.items()}

    # Shape 1: instruction clustering leads the bug count (paper: S-INS,
    # S-INS-PAIR and Random S-INS-PAIR found the most bugs).
    ins_best = max(len(bugs["S-INS"]), len(bugs["S-INS-PAIR"]))
    for other in ("S-FULL", "S-CH", "S-MEM"):
        assert ins_best >= len(bugs[other]), (
            f"{other} outperformed instruction clustering: "
            f"{bugs[other]} vs {bugs['S-INS']} | {bugs['S-INS-PAIR']}"
        )

    # Shape 2: the benign allocator race is found by every method,
    # including the two no-analysis baselines (paper: #13 everywhere).
    for method, found in bugs.items():
        assert "SB13" in found, f"{method} missed the ubiquitous SB13"

    # Shape 3: S-FULL spends its budget on near-duplicate channels and
    # discovers no more than the baselines' union.
    baseline_union = bugs[RANDOM_PAIRING] | bugs[DUPLICATE_PAIRING]
    assert len(bugs["S-FULL"]) <= max(len(baseline_union), 2)

    # Shape 4: every clustering strategy yields clusters; the baselines
    # have none ("NA" in the paper's table).
    for method, campaign in campaigns.items():
        if method in (RANDOM_PAIRING, DUPLICATE_PAIRING):
            assert campaign.exemplar_pmcs == 0
        else:
            assert campaign.exemplar_pmcs > 0
